"""Ring-buffer mechanics of the shared-memory halo transport.

The conformance suite (:mod:`tests.parallel.test_comm_conformance`) pins the
interface semantics; this file exercises the parts specific to the shm
implementation: wraparound allocation with tail padding, space accounting
against the consumer-published ``released`` counter, the blocking allocator
(including its partial-token early ship), and capacity sizing/limits.
"""

import multiprocessing
import threading

import numpy as np
import pytest

from repro.parallel.shm_comm import (
    HEADER_BYTES,
    ShmCommunicator,
    ShmRing,
    create_ring_segment,
    ring_capacity,
)


@pytest.fixture
def segment(request):
    shm = create_ring_segment(f"repro-test-ring-{id(request)}", 256)
    yield shm
    shm.close()
    shm.unlink()


class TestShmRing:
    def test_allocate_write_read_release(self, segment):
        producer, consumer = ShmRing(segment), ShmRing.attach(segment.name)
        offset, advance = producer.try_allocate(64)
        assert (offset, advance) == (0, 64)
        payload = np.arange(8, dtype=np.float64)
        np.copyto(producer.view(offset, payload.shape, payload.dtype), payload)
        np.testing.assert_array_equal(
            consumer.view(offset, payload.shape, payload.dtype), payload
        )
        consumer.release(advance)
        assert producer.released() == 64
        consumer.close()

    def test_wraparound_pads_over_the_segment_end(self, segment):
        producer, consumer = ShmRing(segment), ShmRing.attach(segment.name)
        for _ in range(3):  # written = 240, 16 bytes of tail left
            offset, advance = producer.try_allocate(80)
            consumer.release(advance)
        assert producer.written == 240
        offset, advance = producer.try_allocate(80)
        # the 16-byte tail cannot hold the payload: the allocation pads over
        # it and the data lands at the ring start
        assert offset == 0 and advance == 16 + 80
        payload = np.arange(10, dtype=np.float64)
        np.copyto(producer.view(offset, payload.shape, payload.dtype), payload)
        np.testing.assert_array_equal(
            consumer.view(offset, payload.shape, payload.dtype), payload
        )
        consumer.close()

    def test_full_ring_refuses_until_released(self, segment):
        producer, consumer = ShmRing(segment), ShmRing.attach(segment.name)
        offset, advance = producer.try_allocate(256)  # the whole capacity
        assert producer.try_allocate(1) is None
        consumer.release(advance)
        assert producer.try_allocate(1) is not None
        consumer.close()

    def test_oversized_payload_is_an_error(self, segment):
        with pytest.raises(ValueError, match="exceeds the ring capacity"):
            ShmRing(segment).try_allocate(257)

    def test_capacity_derives_from_segment_size(self, segment):
        assert ShmRing.attach(segment.name).capacity == 256
        assert segment.size >= HEADER_BYTES + 256


class TestRingCapacity:
    def test_minimum_floor(self):
        assert ring_capacity(0) == 1 << 16
        assert ring_capacity(100) == 1 << 16

    def test_scales_with_modelled_traffic(self):
        # four cycles deep, rounded up to a power of two
        assert ring_capacity(100_000) == 1 << 19
        assert ring_capacity(1 << 20) == 1 << 22


def _shm_pair(capacity: int, timeout: float = 10.0):
    """Two in-process ShmCommunicator endpoints over tiny rings."""
    ctx = multiprocessing.get_context()
    inbound = [ctx.Queue(), ctx.Queue()]
    segments, rings = [], {}
    for src, dst in ((0, 1), (1, 0)):
        name = f"repro-test-pair-{id(inbound)}-{src}to{dst}"
        segments.append(create_ring_segment(name, capacity))
        rings[(src, dst)] = name
    comms = [
        ShmCommunicator(
            rank,
            2,
            inbound[rank],
            {1 - rank: inbound[1 - rank]},
            tx={1 - rank: ShmRing.attach(rings[(rank, 1 - rank)])},
            rx={1 - rank: ShmRing.attach(rings[(1 - rank, rank)])},
            timeout=timeout,
        )
        for rank in (0, 1)
    ]

    def close():
        for comm in comms:
            comm.close()
        for shm in segments:
            shm.close()
            shm.unlink()

    return comms, close


class TestShmCommunicatorBackpressure:
    def test_ring_recycles_across_many_flushes(self):
        # cumulative traffic is many times the ring capacity; consuming as
        # we go keeps the ring recycling without ever blocking
        comms, close = _shm_pair(capacity=1 << 10)
        try:
            payload = np.arange(32, dtype=np.float64)  # 256 bytes
            for i in range(64):  # 16 KiB total through a 1 KiB ring
                comms[0].send(payload + i, src=0, dst=1, tag=0)
                comms[0].flush()
                np.testing.assert_array_equal(
                    comms[1].recv(0, 1, tag=0), payload + i
                )
        finally:
            close()

    def test_full_ring_blocks_then_completes_when_consumer_drains(self):
        comms, close = _shm_pair(capacity=1 << 10)
        try:
            payload = np.zeros(48, dtype=np.float64)  # 384 bytes
            n_messages = 5  # 1920 bytes staged, ring holds 1024: flush must wait
            for i in range(n_messages):
                comms[0].send(payload + i, src=0, dst=1, tag=0)

            received = []

            def consume():
                for _ in range(n_messages):
                    received.append(comms[1].recv(0, 1, tag=0)[0])

            consumer = threading.Thread(target=consume)
            consumer.start()
            comms[0].flush()  # blocks mid-batch until the consumer releases
            consumer.join(timeout=10.0)
            assert not consumer.is_alive()
            assert received == [float(i) for i in range(n_messages)]
        finally:
            close()

    def test_full_ring_without_consumer_times_out_loudly(self):
        comms, close = _shm_pair(capacity=1 << 10, timeout=0.2)
        try:
            payload = np.zeros(48, dtype=np.float64)
            for i in range(5):
                comms[0].send(payload, src=0, dst=1, tag=0)
            with pytest.raises(RuntimeError, match="stayed full"):
                comms[0].flush()
        finally:
            close()

    def test_received_arrays_are_copies_not_ring_views(self):
        # a recv'd payload must survive the ring slot being overwritten
        comms, close = _shm_pair(capacity=1 << 10)
        try:
            first = np.full(16, 7.0)
            comms[0].send(first, src=0, dst=1, tag=0)
            comms[0].flush()
            held = comms[1].recv(0, 1, tag=0)
            assert held.base is None  # an owned copy, not a shm view
            for i in range(64):  # force the ring to reuse the slot
                comms[0].send(np.full(16, float(i)), src=0, dst=1, tag=0)
                comms[0].flush()
                comms[1].recv(0, 1, tag=0)
            np.testing.assert_array_equal(held, first)
        finally:
            close()

"""Unit tests for partitioning, communication accounting and the scaling model."""

import json
import multiprocessing

import numpy as np
import pytest

from repro.core.clustering import derive_clustering
from repro.mesh.generation import box_mesh
from repro.parallel.communicator import MessageStats, SimulatedCommunicator
from repro.parallel.process_comm import ProcessCommunicator
from repro.parallel.exchange import build_halo, exchange_face_data, exchange_volumes_per_cycle
from repro.parallel.machine_model import FRONTERA_NODE, strong_scaling_study
from repro.parallel.partition import (
    element_weights,
    face_weights,
    partition_dual_graph,
)


@pytest.fixture(scope="module")
def mesh():
    coords = np.linspace(0.0, 4000.0, 5)
    return box_mesh(coords, coords, coords, jitter=0.1, free_surface_top=False)


@pytest.fixture(scope="module")
def clustering(mesh):
    rng = np.random.default_rng(0)
    dts = rng.uniform(1.0, 6.0, mesh.n_elements)
    return derive_clustering(dts, 3, 1.0, mesh.neighbors)


class TestWeights:
    def test_element_weights_follow_update_frequency(self):
        ids = np.array([0, 1, 2])
        np.testing.assert_allclose(element_weights(ids, 3), [4.0, 2.0, 1.0])
        with pytest.raises(ValueError):
            element_weights(np.array([3]), 3)

    def test_face_weights_use_faster_side(self, mesh, clustering):
        weights = face_weights(clustering.cluster_ids, mesh.neighbors, 3, values_per_face=135)
        assert weights.shape == mesh.neighbors.shape
        assert np.all(weights[mesh.neighbors < 0] == 0.0)
        interior = mesh.neighbors >= 0
        assert np.all(weights[interior] >= 135)


class TestPartitioning:
    @pytest.mark.parametrize("n_parts", [2, 4, 8])
    def test_weighted_balance(self, mesh, clustering, n_parts):
        weights = element_weights(clustering.cluster_ids, clustering.n_clusters)
        result = partition_dual_graph(mesh.neighbors, weights, n_parts)
        assert result.partitions.min() == 0 and result.partitions.max() == n_parts - 1
        assert result.load_imbalance() < 1.25
        assert result.element_counts.sum() == mesh.n_elements

    def test_unbalanced_element_counts_with_lts_weights(self, mesh):
        """Partitions rich in large-time-step elements hold more elements --
        the effect shown in Fig. 7."""
        # half the mesh gets cluster 0, the other half cluster 2
        ids = np.where(np.arange(mesh.n_elements) < mesh.n_elements // 2, 0, 2)
        weights = element_weights(ids, 3)
        result = partition_dual_graph(mesh.neighbors, weights, 4)
        assert result.element_count_spread() > 1.5
        assert result.load_imbalance() < 1.3

    def test_single_partition(self, mesh):
        result = partition_dual_graph(mesh.neighbors, np.ones(mesh.n_elements), 1)
        assert np.all(result.partitions == 0)

    def test_validation(self, mesh):
        with pytest.raises(ValueError):
            partition_dual_graph(mesh.neighbors, np.ones(mesh.n_elements), 0)
        with pytest.raises(ValueError):
            partition_dual_graph(mesh.neighbors, -np.ones(mesh.n_elements), 2)

    def test_cut_edges_reported(self, mesh):
        result = partition_dual_graph(mesh.neighbors, np.ones(mesh.n_elements), 2)
        assert 0 < result.cut_edges(mesh.neighbors) < mesh.n_elements * 2


class TestCommunicator:
    def test_send_recv_and_accounting(self):
        comm = SimulatedCommunicator(3)
        payload = np.arange(10, dtype=np.float32)
        comm.send(payload, src=0, dst=2, tag=7)
        assert comm.pending(0, 2, 7) == 1
        received = comm.recv(src=0, dst=2, tag=7)
        np.testing.assert_array_equal(received, payload)
        assert comm.stats.n_messages == 1
        assert comm.stats.n_bytes == payload.nbytes
        assert comm.all_delivered()

    def test_missing_message_raises(self):
        comm = SimulatedCommunicator(2)
        with pytest.raises(RuntimeError):
            comm.recv(src=0, dst=1)

    def test_rank_validation(self):
        comm = SimulatedCommunicator(2)
        with pytest.raises(ValueError):
            comm.send(np.zeros(1), src=0, dst=5)
        with pytest.raises(ValueError):
            SimulatedCommunicator(0)

    def test_recv_order_is_fifo_per_channel(self):
        comm = SimulatedCommunicator(2)
        for value in (1.0, 2.0, 3.0):
            comm.send(np.full(2, value), src=0, dst=1, tag=4)
        assert comm.pending(0, 1, 4) == 3
        assert [comm.recv(0, 1, 4)[0] for _ in range(3)] == [1.0, 2.0, 3.0]


class TestMessageStats:
    def test_totals_stay_json_native_with_numpy_sizes(self):
        """Totals must be coerced like the per-pair counters: numpy int
        sizes would otherwise turn ``n_bytes`` into ``np.int64`` and crash
        the ``json.dumps`` of a run summary."""
        stats = MessageStats()
        stats.record(0, 1, np.int64(720))
        stats.record(0, 1, np.int64(80))
        assert type(stats.n_bytes) is int
        assert type(stats.n_messages) is int
        round_tripped = json.loads(json.dumps(stats.as_dict()))
        assert round_tripped["n_bytes"] == 800
        assert round_tripped["per_pair"]["0->1"] == {"messages": 2, "bytes": 800}

    def test_merge_accumulates_objects_and_dicts(self):
        a, b = MessageStats(), MessageStats()
        a.record(0, 1, 10)
        b.record(0, 1, 5)
        b.record(1, 0, 7)
        a.merge(b)
        a.merge(b.as_dict())
        assert a.n_messages == 5
        assert a.n_bytes == 34
        assert a.per_pair["0->1"] == {"messages": 3, "bytes": 20}
        assert a.per_pair["1->0"] == {"messages": 2, "bytes": 14}


def _wire_process_comms(n_ranks: int = 2, timeout: float = 10.0):
    """In-process ProcessCommunicator endpoints sharing real queues."""
    ctx = multiprocessing.get_context()
    inbound = [ctx.Queue() for _ in range(n_ranks)]
    return [
        ProcessCommunicator(
            rank,
            n_ranks,
            inbound[rank],
            {dst: inbound[dst] for dst in range(n_ranks) if dst != rank},
            timeout=timeout,
        )
        for rank in range(n_ranks)
    ]


class TestProcessCommunicator:
    def test_send_recv_roundtrip_and_accounting(self):
        sender, receiver = _wire_process_comms()
        payload = np.arange(10, dtype=np.float64)
        sender.send(payload, src=0, dst=1, tag=3)
        assert not sender.all_delivered()  # staged, not yet flushed
        sender.flush()
        assert sender.all_delivered()
        received = receiver.recv(src=0, dst=1, tag=3)
        np.testing.assert_array_equal(received, payload)
        assert sender.stats.n_messages == 1
        assert sender.stats.n_bytes == payload.nbytes
        assert sender.stats.per_pair["0->1"] == {"messages": 1, "bytes": payload.nbytes}
        assert receiver.all_delivered()

    def test_per_channel_fifo_across_interleaved_tags(self):
        sender, receiver = _wire_process_comms()
        sender.send(np.full(1, 1.0), src=0, dst=1, tag=7)
        sender.send(np.full(1, 9.0), src=0, dst=1, tag=8)
        sender.flush()
        sender.send(np.full(1, 2.0), src=0, dst=1, tag=7)
        sender.flush()
        assert receiver.recv(0, 1, tag=7)[0] == 1.0
        assert receiver.recv(0, 1, tag=8)[0] == 9.0
        assert receiver.recv(0, 1, tag=7)[0] == 2.0
        assert receiver.all_delivered()

    def test_flush_batches_one_item_per_destination(self):
        comms = _wire_process_comms(n_ranks=3)
        sender = comms[0]
        for tag in range(4):
            sender.send(np.full((2, 3), float(tag)), src=0, dst=1, tag=tag)
        sender.send(np.zeros((2, 3)), src=0, dst=2, tag=0)
        sender.flush()
        # one stacked queue item per destination, messages still per face
        src, tags, stacked = comms[1]._inbound.get(timeout=5.0)
        assert src == 0 and stacked.shape == (4, 2, 3)
        np.testing.assert_array_equal(tags, np.arange(4))
        assert sender.stats.n_messages == 5

    def test_recv_times_out_loudly_without_a_sender(self):
        _, receiver = _wire_process_comms(timeout=0.2)
        with pytest.raises(RuntimeError, match="no halo payload"):
            receiver.recv(src=0, dst=1, tag=0)

    def test_timeout_error_reports_unflushed_staged_sends(self):
        # a stage that never flushed is a schedule bug, not a dead peer --
        # the timeout diagnostics must say so (and how much never travelled)
        sender, _ = _wire_process_comms(timeout=0.2)
        sender.send(np.zeros(3), src=0, dst=1, tag=0)
        sender.send(np.zeros(3), src=0, dst=1, tag=1)
        with pytest.raises(RuntimeError, match=r"2 staged payload\(s\).*never\s+flushed"):
            sender.recv(src=1, dst=0, tag=0)

    def test_mixed_shape_payloads_flush_in_fifo_order(self):
        # one destination, one micro step, three payloads of two different
        # shapes (mixed-width fused groups): np.stack over the whole stage
        # used to raise ValueError here
        sender, receiver = _wire_process_comms()
        sender.send(np.full((9, 2), 1.0), src=0, dst=1, tag=0)
        sender.send(np.full((9, 4), 2.0), src=0, dst=1, tag=1)
        sender.send(np.full((9, 2), 3.0), src=0, dst=1, tag=0)
        sender.flush()
        assert receiver.recv(0, 1, tag=0)[0, 0] == 1.0
        wide = receiver.recv(0, 1, tag=1)
        assert wide.shape == (9, 4) and wide[0, 0] == 2.0
        assert receiver.recv(0, 1, tag=0)[0, 0] == 3.0
        assert receiver.all_delivered()

    def test_ingest_copies_release_the_stacked_batch(self):
        # a `stacked[index]` view would pin the whole unpickled batch alive
        # until its last message is consumed; ingest must copy instead
        sender, receiver = _wire_process_comms()
        for tag in range(4):
            sender.send(np.full((2, 3), float(tag)), src=0, dst=1, tag=tag)
        sender.flush()
        first = receiver.recv(0, 1, tag=0)
        assert first.base is None  # an owned copy, not a view of the batch
        for mailbox in receiver._mailboxes.values():
            for message in mailbox:
                assert message.base is None

    def test_endpoint_validation(self):
        sender, receiver = _wire_process_comms()
        with pytest.raises(ValueError, match="cannot send as"):
            sender.send(np.zeros(1), src=1, dst=0)
        with pytest.raises(ValueError, match="cannot receive for"):
            receiver.recv(src=0, dst=0)
        with pytest.raises(ValueError, match="out of range"):
            sender.send(np.zeros(1), src=0, dst=5)


class TestHaloExchange:
    def test_halo_faces_are_symmetric(self, mesh):
        partitions = partition_dual_graph(mesh.neighbors, np.ones(mesh.n_elements), 2).partitions
        halo = build_halo(mesh.neighbors, partitions)
        assert len(halo) > 0
        # each cut face appears once from each side
        pairs = {(f.element, f.neighbor_element) for f in halo}
        for f in halo:
            assert (f.neighbor_element, f.element) in pairs

    def test_face_local_compression_reduces_volume(self, mesh, clustering):
        partitions = partition_dual_graph(mesh.neighbors, np.ones(mesh.n_elements), 2).partitions
        halo = build_halo(mesh.neighbors, partitions)
        full = exchange_volumes_per_cycle(
            halo, clustering.cluster_ids, 3, order=5, face_local=False
        )
        compressed = exchange_volumes_per_cycle(
            halo, clustering.cluster_ids, 3, order=5, face_local=True
        )
        assert compressed["total_bytes"] < full["total_bytes"]
        np.testing.assert_allclose(
            full["total_bytes"] / compressed["total_bytes"], 35.0 / 15.0
        )

    def test_exchange_face_data_roundtrip(self, mesh):
        partitions = partition_dual_graph(mesh.neighbors, np.ones(mesh.n_elements), 2).partitions
        halo = build_halo(mesh.neighbors, partitions)
        comm = SimulatedCommunicator(2)
        face_data = {(f.element, f.face): np.full(135, float(f.element)) for f in halo}
        received = exchange_face_data(comm, halo, face_data)
        assert len(received) > 0
        assert comm.stats.n_messages == len(halo)
        for (neighbor_element, _), payload in received.items():
            assert payload.shape == (135,)


class TestScalingModel:
    def test_efficiency_profile(self, mesh, clustering):
        weights = element_weights(clustering.cluster_ids, clustering.n_clusters)
        points = strong_scaling_study(
            weights,
            mesh.neighbors,
            clustering.cluster_ids,
            clustering.n_clusters,
            node_counts=[1, 2, 4, 8],
            flops_per_element_update=5e5,
            order=4,
        )
        assert len(points) == 4
        assert points[0].parallel_efficiency == pytest.approx(1.0)
        for point in points:
            assert 0.0 < point.parallel_efficiency <= 1.3
            assert point.total_time > 0
        # strong scaling: total time decreases with node count
        assert points[-1].total_time < points[0].total_time

    def test_frontera_node_parameters(self):
        assert FRONTERA_NODE.peak_flops == pytest.approx(4.84e12)
        assert 0 < FRONTERA_NODE.sustained_fraction < 1

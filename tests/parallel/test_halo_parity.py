"""Halo-exchange parity: the payloads a partition boundary must carry.

For a 2-cluster mesh cut into 2 partitions, the face-local exchange has to
deliver exactly what the single-rank solver reads straight out of its
neighbours' buffers (Fig. 6): ``B1`` across same-cluster faces, the
accumulated ``B3`` when the sender is in the smaller (faster) cluster, and
``B2`` / ``B1 - B2`` -- by receiver sub-step parity -- when the sender is in
the larger cluster.
"""

import numpy as np
import pytest

from repro.core.buffers import LARGER, SAME, SMALLER
from repro.core.lts_scheduler import schedule_cycle
from repro.parallel.communicator import SimulatedCommunicator
from repro.parallel.exchange import build_halo, exchange_face_data
from repro.scenarios import ScenarioRunner, get_scenario


@pytest.fixture(scope="module")
def solver_setup():
    spec = get_scenario(
        "loh3",
        extent_m=6000.0,
        characteristic_length=1500.0,
        order=2,
        n_mechanisms=1,
        lam=1.0,
        n_clusters=2,
        n_cycles=1,
    )
    runner = ScenarioRunner(spec)
    assert np.all(runner.clustering.counts > 0), "need two populated clusters"
    # non-trivial state so the parity comparison is not 0 == 0
    rng = np.random.default_rng(7)
    runner.solver.dofs = rng.normal(size=runner.solver.dofs.shape)
    return runner


def test_halo_payloads_match_neighbor_buffer_reads(solver_setup):
    runner = solver_setup
    solver = runner.solver
    mesh = runner.setup.disc.mesh
    cluster_ids = runner.clustering.cluster_ids
    assert runner.clustering.n_clusters == 2

    # a 2-partition cut with plenty of halo faces in all cluster relations
    partitions = np.arange(mesh.n_elements, dtype=np.int64) % 2
    halo = build_halo(mesh.neighbors, partitions)
    assert len(halo) > 0

    seen = {"b1": 0, "b3": 0, "b2": 0, "b1_minus_b2": 0}
    for entry in schedule_cycle(2):
        for l in entry["predict"]:
            solver._predict(solver.clusters[l])
        for l in entry["correct"]:
            cluster = solver.clusters[l]
            # the direct neighbour-buffer reads of the single-rank solver
            neighbor_te = solver.buffers.neighbor_data(
                cluster.elements, cluster.neighbors, cluster.relations, cluster.step_index
            )
            rows = {int(e): i for i, e in enumerate(cluster.elements)}
            for face in halo:
                if cluster_ids[face.neighbor_element] != l:
                    continue  # the receiving side is not correcting now
                row = rows[face.neighbor_element]
                recv_face = int(
                    np.where(mesh.neighbors[face.neighbor_element] == face.element)[0][0]
                )
                relation = cluster.relations[row, recv_face]
                buffers = solver.buffers
                if relation == SAME:
                    payload, kind = buffers.b1[face.element], "b1"
                elif relation == SMALLER:
                    payload, kind = buffers.b3[face.element], "b3"
                else:
                    assert relation == LARGER
                    if cluster.step_index % 2 == 0:
                        payload, kind = buffers.b2[face.element], "b2"
                    else:
                        payload = buffers.b1[face.element] - buffers.b2[face.element]
                        kind = "b1_minus_b2"
                np.testing.assert_array_equal(payload, neighbor_te[row, recv_face])
                assert np.abs(payload).max() > 0.0
                seen[kind] += 1
            solver._correct(cluster, 0.0)
    # every payload kind of Fig. 6 must have been exercised
    assert all(count > 0 for count in seen.values()), seen


def test_exchange_delivers_parity_payloads(solver_setup):
    """Route the parity payloads through the simulated communicator and
    check they arrive on the matching channel."""
    runner = solver_setup
    solver = runner.solver
    mesh = runner.setup.disc.mesh
    partitions = np.arange(mesh.n_elements, dtype=np.int64) % 2
    halo = build_halo(mesh.neighbors, partitions)

    solver._predict(solver.clusters[0])
    solver._predict(solver.clusters[1])

    comm = SimulatedCommunicator(2)
    face_data = {
        (f.element, f.face): solver.buffers.b1[f.element] for f in halo
    }
    received = exchange_face_data(comm, halo, face_data)
    assert comm.stats.n_messages == len(halo)
    assert len(received) == len(halo)
    assert comm.all_delivered()
    # every receiving element got the payload the owning side put on the wire
    for face in halo:
        payload = received[(face.neighbor_element, face.element)]
        np.testing.assert_array_equal(payload, solver.buffers.b1[face.element])

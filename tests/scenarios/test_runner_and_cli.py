"""Integration tests of the scenario runner, checkpoint/restart and the CLI.

The central correctness claims of the subsystem:

* through the runner, single-cluster LTS reproduces GTS bit-for-bit,
* a run interrupted at a checkpoint and resumed is bit-identical (DOFs and
  seismograms) to an uninterrupted run, and
* the CLI drives scenarios end-to-end and writes the run artefacts.
"""

import json

import numpy as np
import pytest

from repro.scenarios import ScenarioRunner, get_scenario
from repro.scenarios.cli import main as cli_main
from repro.core.lts_solver import ClusteredLtsSolver


@pytest.fixture(scope="module")
def tiny_plane_wave():
    """A very small single-cluster scenario (order 2, ~tens of elements)."""
    return get_scenario(
        "plane_wave", extent_m=1500.0, characteristic_length=750.0, order=2, n_cycles=3
    )


@pytest.fixture(scope="module")
def tiny_loh3():
    """A small multi-cluster LOH.3 variant exercising the LTS buffers."""
    return get_scenario(
        "loh3",
        extent_m=4000.0,
        characteristic_length=2000.0,
        order=2,
        n_mechanisms=1,
        lam=1.0,
        n_clusters=2,
        n_cycles=4,
    )


class TestRunnerEquivalence:
    def test_single_cluster_lts_matches_gts_bit_for_bit(self, tiny_plane_wave):
        lts = ScenarioRunner(tiny_plane_wave)
        gts = ScenarioRunner(tiny_plane_wave.with_overrides(solver="gts"))
        lts.run()
        gts.run()
        assert lts.solver.n_element_updates == gts.solver.n_element_updates
        np.testing.assert_array_equal(lts.solver.dofs, gts.solver.dofs)
        assert np.abs(lts.solver.dofs).max() > 0.0, "the plane wave must move"

    def test_accounting(self, tiny_plane_wave):
        runner = ScenarioRunner(tiny_plane_wave)
        summary = runner.run()
        n = runner.setup.mesh.n_elements
        assert summary["n_elements"] == n
        assert summary["element_updates"] == n * summary["cycles"]
        assert summary["wall_s"] > 0.0
        assert summary["t_end"] == pytest.approx(summary["cycles"] * summary["macro_dt"])

    def test_legacy_lts_reports_communication_volumes(self, tiny_plane_wave):
        spec = tiny_plane_wave.with_overrides(solver="legacy-lts", n_cycles=1)
        summary = ScenarioRunner(spec).run()
        assert summary["legacy_comm"]["reduction_vs_derivatives"] >= 1.0

    def test_preprocessing_reorder_keeps_physics(self, tiny_loh3):
        plain = ScenarioRunner(tiny_loh3)
        reordered = ScenarioRunner(tiny_loh3.with_overrides(n_partitions=2, reorder=True))
        assert reordered.preprocessed is not None
        assert reordered.summary()["n_partitions"] == 2
        plain.run()
        reordered.run()
        # same element updates; the reordered run is a permutation of the same mesh
        assert plain.solver.n_element_updates == reordered.solver.n_element_updates
        assert reordered.setup.mesh.n_elements == plain.setup.mesh.n_elements
        # elements are sorted by (partition, cluster)
        parts = reordered.preprocessed.partitions
        assert np.all(np.diff(parts) >= 0)

    def test_explicit_clustering_with_reorder_rejected(self, tiny_loh3):
        from repro.scenarios import build_setup

        setup = build_setup(tiny_loh3)
        with pytest.raises(ValueError, match="explicit clustering"):
            ScenarioRunner(
                tiny_loh3.with_overrides(n_partitions=2, reorder=True),
                setup=setup,
                clustering=setup.clustering(),
            )


class TestCheckpointRestart:
    def test_resume_is_bit_identical(self, tiny_loh3, tmp_path):
        path = tmp_path / "run.ckpt.npz"

        full = ScenarioRunner(tiny_loh3)
        full.run()
        assert isinstance(full.solver, ClusteredLtsSolver)

        interrupted = ScenarioRunner(tiny_loh3)
        while interrupted.cycles_done < 2:
            interrupted.step_cycle()
        interrupted.save_checkpoint(path)
        del interrupted

        resumed = ScenarioRunner.resume(path)
        assert resumed.cycles_done == 2
        resumed.run()

        np.testing.assert_array_equal(resumed.solver.dofs, full.solver.dofs)
        assert resumed.solver.time == full.solver.time
        assert resumed.solver.n_element_updates == full.solver.n_element_updates
        for name in ("receiver_9", "epicentre"):
            t_full, v_full = full.receivers[name].seismogram()
            t_res, v_res = resumed.receivers[name].seismogram()
            np.testing.assert_array_equal(t_res, t_full)
            np.testing.assert_array_equal(v_res, v_full)

    def test_resume_gts(self, tiny_plane_wave, tmp_path):
        path = tmp_path / "gts.ckpt.npz"
        spec = tiny_plane_wave.with_overrides(solver="gts")
        full = ScenarioRunner(spec)
        full.run()

        interrupted = ScenarioRunner(spec)
        interrupted.step_cycle()
        interrupted.save_checkpoint(path)
        resumed = ScenarioRunner.resume(path)
        resumed.run()
        np.testing.assert_array_equal(resumed.solver.dofs, full.solver.dofs)

    def test_resume_restores_explicit_clustering(self, tiny_loh3, tmp_path):
        """A runner built with a non-spec clustering (e.g. a single-cluster
        GTS baseline) must resume with that exact clustering, not re-derive
        the spec's."""
        from repro.scenarios import build_setup

        path = tmp_path / "explicit.ckpt.npz"
        setup = build_setup(tiny_loh3)
        clustering = setup.clustering(1, lam=1.0)  # spec says 2 clusters
        spec = tiny_loh3.with_overrides(solver="gts")

        full = ScenarioRunner(spec, setup=setup, clustering=clustering)
        full.run()

        interrupted = ScenarioRunner(spec, setup=setup, clustering=clustering)
        interrupted.step_cycle()
        interrupted.save_checkpoint(path)
        resumed = ScenarioRunner.resume(path)
        assert resumed.clustering.n_clusters == 1
        resumed.run()
        np.testing.assert_array_equal(resumed.solver.dofs, full.solver.dofs)

    def _counting_runner(self, runner, path, monkeypatch):
        """Wrap ``save_checkpoint`` to record at which cycles it writes."""
        calls = []
        original = runner.save_checkpoint

        def counting(target):
            calls.append(runner.cycles_done)
            original(target)

        monkeypatch.setattr(runner, "save_checkpoint", counting)
        return calls

    def test_final_checkpoint_not_written_twice(self, tiny_plane_wave, tmp_path, monkeypatch):
        """When the last cycle coincides with the cadence the same state used
        to be serialised twice back-to-back."""
        path = tmp_path / "dedup.ckpt.npz"
        runner = ScenarioRunner(tiny_plane_wave)  # 3 cycles
        calls = self._counting_runner(runner, path, monkeypatch)
        runner.run(checkpoint_path=path, checkpoint_every=1)
        assert calls == [1, 2, 3]  # one write per cycle, no duplicate final

    def test_checkpoint_every_zero_disables_cadence(self, tiny_plane_wave, tmp_path, monkeypatch):
        path = tmp_path / "nocadence.ckpt.npz"
        spec = tiny_plane_wave.with_overrides(checkpoint_every=1)
        runner = ScenarioRunner(spec)
        calls = self._counting_runner(runner, path, monkeypatch)
        runner.run(checkpoint_path=path, checkpoint_every=0)
        assert calls == [runner.total_cycles]  # only the final write

    def test_resume_with_a_new_cadence(self, tiny_loh3, tmp_path, monkeypatch):
        """A resumed run can change its checkpoint cadence instead of
        inheriting the spec's."""
        path = tmp_path / "cadence.ckpt.npz"
        runner = ScenarioRunner(tiny_loh3)  # 4 cycles
        runner.step_cycle()
        runner.save_checkpoint(path)

        resumed = ScenarioRunner.resume(path)
        calls = self._counting_runner(resumed, path, monkeypatch)
        resumed.run(checkpoint_path=path, checkpoint_every=2)
        # cadence writes at cycles 2 and 4; the final write is the cadence's
        assert calls == [2, 4]

    def test_checkpoint_path_without_npz_suffix(self, tiny_plane_wave, tmp_path):
        path = tmp_path / "my.ckpt"  # savez would silently write my.ckpt.npz
        runner = ScenarioRunner(tiny_plane_wave)
        runner.step_cycle()
        runner.save_checkpoint(path)
        assert path.exists()
        resumed = ScenarioRunner.resume(path)
        assert resumed.cycles_done == 1

    def test_mismatched_checkpoint_rejected(self, tiny_plane_wave, tmp_path):
        path = tmp_path / "bad.ckpt.npz"
        runner = ScenarioRunner(tiny_plane_wave)
        runner.step_cycle()
        runner.save_checkpoint(path)
        # corrupt the stored spec so the rebuilt mesh no longer matches
        data = dict(np.load(path))
        meta = json.loads(str(data["meta"]))
        meta["spec"]["mesh"]["characteristic_length"] = 300.0
        data["meta"] = json.dumps(meta)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="does not match"):
            ScenarioRunner.resume(path)


class TestOutputs:
    def test_seismograms_of_an_unrun_scenario_are_empty_csvs(self, tiny_plane_wave, tmp_path):
        from repro.scenarios import write_outputs

        runner = ScenarioRunner(tiny_plane_wave)  # not run: no samples yet
        written = write_outputs(runner, tmp_path)
        csv = written["seismograms"][0]
        assert csv.read_text().strip() == "time,vx,vy,vz"


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "loh3" in out and "plane_wave" in out

    def test_describe(self, capsys):
        assert cli_main(["describe", "bimaterial_slab"]) == 0
        out = capsys.readouterr().out
        assert "default spec" in out

    def test_run_writes_outputs(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        code = cli_main(
            [
                "run",
                "plane_wave",
                "--set", "extent_m=1500.0",
                "--set", "characteristic_length=750.0",
                "--order", "2",
                "--cycles", "2",
                "--output-dir", str(out_dir),
            ]
        )
        assert code == 0
        summary = json.loads((out_dir / "run_summary.json").read_text())
        assert summary["scenario"] == "plane_wave"
        assert summary["cycles"] == 2
        csv = out_dir / "seismogram_centre.csv"
        assert csv.exists()
        lines = csv.read_text().strip().splitlines()
        assert lines[0] == "time,vx,vy,vz"
        assert len(lines) == 1 + 2  # header + one sample per cycle (single cluster)

    def test_run_spec_file_round_trip(self, tmp_path):
        spec = get_scenario(
            "plane_wave", extent_m=1500.0, characteristic_length=750.0, order=2, n_cycles=1
        )
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(spec.to_json())
        assert cli_main(["run", "--spec", str(spec_file), "--quiet"]) == 0

    def test_run_checkpoint_and_resume(self, tmp_path, capsys):
        ckpt = tmp_path / "cli.ckpt.npz"
        args = [
            "run",
            "plane_wave",
            "--set", "extent_m=1500.0",
            "--set", "characteristic_length=750.0",
            "--order", "2",
            "--cycles", "2",
            "--checkpoint", str(ckpt),
            "--quiet",
        ]
        assert cli_main(args) == 0
        assert ckpt.exists()
        # the finished run's checkpoint resumes as a no-op continuation
        assert cli_main(["resume", str(ckpt), "--quiet"]) == 0

    def test_run_smoke_flag(self, capsys):
        assert cli_main(["run", "homogeneous_halfspace", "--smoke", "--quiet"]) == 0

    def test_checkpoint_every_zero_is_not_coerced_to_keep(self, tmp_path):
        """``--checkpoint-every 0`` must disable the spec's cadence (a falsy
        check used to silently keep it)."""
        from repro.scenarios.cli import _resolve_spec, build_parser

        spec = get_scenario(
            "plane_wave", extent_m=1500.0, characteristic_length=750.0, order=2, n_cycles=1
        ).with_overrides(checkpoint_every=3)
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(spec.to_json())

        parser = build_parser()
        kept = _resolve_spec(parser.parse_args(["run", "--spec", str(spec_file)]))
        assert kept.run.checkpoint_every == 3
        disabled = _resolve_spec(
            parser.parse_args(["run", "--spec", str(spec_file), "--checkpoint-every", "0"])
        )
        assert disabled.run.checkpoint_every is None

    def test_resume_accepts_a_new_cadence(self, tmp_path):
        ckpt = tmp_path / "cadence.ckpt.npz"
        assert cli_main(
            [
                "run",
                "plane_wave",
                "--set", "extent_m=1500.0",
                "--set", "characteristic_length=750.0",
                "--order", "2",
                "--cycles", "2",
                "--checkpoint", str(ckpt),
                "--checkpoint-every", "1",
                "--quiet",
            ]
        ) == 0
        assert cli_main(
            ["resume", str(ckpt), "--checkpoint-every", "0", "--quiet"]
        ) == 0

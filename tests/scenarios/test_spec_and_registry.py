"""Spec validation, serialisation round-trips and the scenario registry."""

import json

import pytest

from repro.scenarios import (
    ClusteringSpec,
    DomainSpec,
    MeshSpec,
    RunSpec,
    ScenarioSpec,
    SolverSpec,
    SourceSpec,
    TimeFunctionSpec,
    VelocityModelSpec,
    describe_scenario,
    get_scenario,
    scenario_names,
)


class TestRegistry:
    def test_at_least_six_scenarios_registered(self):
        names = scenario_names()
        assert len(names) >= 6
        for expected in (
            "loh3",
            "la_habra",
            "homogeneous_halfspace",
            "bimaterial_slab",
            "graded_basin",
            "plane_wave",
        ):
            assert expected in names

    def test_every_factory_builds_a_valid_spec(self):
        for name in scenario_names():
            spec = get_scenario(name)
            assert isinstance(spec, ScenarioSpec)
            assert spec.name == name

    def test_factory_overrides(self):
        spec = get_scenario("bimaterial_slab", contrast=3.0, n_clusters=2)
        assert spec.clustering.n_clusters == 2
        assert "3" in spec.description

    def test_unknown_scenario_raises_with_known_names(self):
        with pytest.raises(KeyError, match="loh3"):
            get_scenario("does_not_exist")

    def test_describe(self):
        text = describe_scenario("loh3")
        assert "loh3" in text
        assert "LOH.3" in text


class TestRoundTrip:
    @pytest.mark.parametrize("name", [n for n in scenario_names()])
    def test_dict_round_trip(self, name):
        spec = get_scenario(name)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("name", [n for n in scenario_names()])
    def test_json_round_trip(self, name):
        spec = get_scenario(name)
        text = spec.to_json(indent=2)
        json.loads(text)  # valid JSON
        assert ScenarioSpec.from_json(text) == spec


class TestValidation:
    def _minimal(self, **kwargs):
        base = dict(
            name="t",
            description="",
            domain=DomainSpec(extent=(0.0, 1.0, 0.0, 1.0, -1.0, 0.0)),
            mesh=MeshSpec(characteristic_length=0.5),
            velocity_model=VelocityModelSpec(
                kind="homogeneous", params={"rho": 1.0, "vp": 2.0, "vs": 1.0}
            ),
            source=SourceSpec(
                kind="point_force",
                location=(0.5, 0.5, -0.5),
                force=(0.0, 0.0, 1.0),
                time_function=TimeFunctionSpec(kind="ricker", params={"f0": 1.0, "t0": 1.0}),
            ),
        )
        base.update(kwargs)
        return ScenarioSpec(**base)

    def test_minimal_spec_is_valid(self):
        self._minimal()

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            DomainSpec(extent=(0.0, 0.0, 0.0, 1.0, -1.0, 0.0))

    def test_bad_solver_kind_rejected(self):
        with pytest.raises(ValueError, match="solver kind"):
            SolverSpec(kind="implicit")

    def test_bad_lambda_rejected(self):
        with pytest.raises(ValueError, match="lambda"):
            ClusteringSpec(lam=0.4)

    def test_run_needs_exactly_one_duration(self):
        with pytest.raises(ValueError):
            RunSpec(n_cycles=2, t_end=1.0)
        with pytest.raises(ValueError):
            RunSpec(n_cycles=None, t_end=None)

    def test_checkpoint_every_zero_normalises_to_disabled(self):
        assert RunSpec(n_cycles=1, checkpoint_every=0).checkpoint_every is None
        assert RunSpec(n_cycles=1, checkpoint_every=2).checkpoint_every == 2
        with pytest.raises(ValueError, match="non-negative"):
            RunSpec(n_cycles=1, checkpoint_every=-1)

    def test_solver_backend_validation(self):
        assert SolverSpec(n_ranks=2, backend="process").backend == "process"
        with pytest.raises(ValueError, match="backend"):
            SolverSpec(backend="threads")
        with pytest.raises(ValueError, match="n_ranks >= 2"):
            SolverSpec(n_ranks=1, backend="process")

    def test_numpy_params_are_normalised(self):
        import numpy as np

        spec = VelocityModelSpec(
            kind="homogeneous",
            params={"rho": np.int64(2700), "vp": np.float32(6000.0), "vs": 3464.0},
        )
        assert spec.params == {"rho": 2700, "vp": 6000.0, "vs": 3464.0}

    def test_homogeneous_model_needs_velocities(self):
        with pytest.raises(ValueError, match="vs"):
            VelocityModelSpec(kind="homogeneous", params={"rho": 1.0, "vp": 2.0})

    def test_scenario_needs_source_or_initial_condition(self):
        with pytest.raises(ValueError, match="source or an initial condition"):
            self._minimal(source=None)

    def test_moment_tensor_shape_enforced(self):
        with pytest.raises(ValueError):
            SourceSpec(
                kind="moment_tensor",
                location=(0.0, 0.0, 0.0),
                moment_tensor=((1.0, 0.0), (0.0, 1.0)),
                time_function=TimeFunctionSpec(kind="ricker", params={"f0": 1.0, "t0": 1.0}),
            )


class TestDerivedSpecs:
    def test_with_overrides(self):
        spec = get_scenario("loh3")
        out = spec.with_overrides(
            order=2, n_clusters=2, lam=0.9, solver="gts", n_fused=2, t_end=1.5
        )
        assert out.order == 2
        assert out.clustering.n_clusters == 2
        assert out.clustering.lam == 0.9
        assert out.solver.kind == "gts"
        assert out.solver.n_fused == 2
        assert out.run.t_end == 1.5 and out.run.n_cycles is None
        # the original is untouched
        assert spec.order == 4 and spec.solver.kind == "lts"

    def test_smoke_coarsens_and_shortens(self):
        spec = get_scenario("loh3")
        smoke = spec.smoke()
        assert smoke.run.n_cycles == 2
        assert smoke.order <= 3
        assert smoke.mesh.characteristic_length > spec.mesh.characteristic_length

    def test_smoke_wavelength_mode(self):
        smoke = get_scenario("la_habra").smoke()
        assert smoke.mesh.max_frequency < get_scenario("la_habra").mesh.max_frequency

"""Scenario-layer coverage of the kernel-backend/precision options plus the
seismogram-output header logic and the benchmark host-metadata stamp."""

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.scenarios import ScenarioRunner, get_scenario
from repro.scenarios.cli import build_parser, main as cli_main
from repro.scenarios.outputs import (
    seismogram_header,
    write_fused_slot_seismograms,
    write_seismograms,
)
from repro.scenarios.spec import ScenarioSpec, SolverSpec
from repro.source.receivers import Receiver


@pytest.fixture(scope="module")
def tiny_loh3():
    return get_scenario(
        "loh3",
        extent_m=4000.0,
        characteristic_length=2000.0,
        order=2,
        n_mechanisms=1,
        lam=1.0,
        n_clusters=2,
        n_cycles=3,
    )


class TestSpecOptions:
    def test_defaults_and_round_trip(self, tiny_loh3):
        import os

        # the default follows REPRO_KERNELS (the CI opt leg soaks every
        # spec-driven test through it), falling back to the reference kernels
        assert tiny_loh3.solver.kernels == (os.environ.get("REPRO_KERNELS") or "ref")
        assert tiny_loh3.solver.precision == "f64"
        spec = tiny_loh3.with_overrides(kernels="opt", precision="f32")
        assert spec.solver.kernels == "opt" and spec.solver.precision == "f32"
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec

    def test_validation(self):
        with pytest.raises(ValueError, match="kernels"):
            SolverSpec(kernels="vectorized")
        with pytest.raises(ValueError, match="precision"):
            SolverSpec(precision="f128")
        # "fast" is a real kernel mode (tolerance-equal, see repro.verification)
        assert SolverSpec(kernels="fast").kernels == "fast"

    def test_cli_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "loh3", "--kernels", "opt", "--precision", "f32"]
        )
        assert args.kernels == "opt" and args.precision == "f32"
        resume = build_parser().parse_args(["resume", "x.npz", "--kernels", "opt"])
        assert resume.kernels == "opt"


class TestRunnerBackendOptions:
    def test_summary_reports_kernels_and_precision(self, tiny_loh3):
        runner = ScenarioRunner(tiny_loh3.with_overrides(kernels="opt"))
        summary = runner.run()
        assert summary["kernels"] == "opt"
        assert summary["precision"] == "f64"

    def test_opt_run_bit_identical_via_runner(self, tiny_loh3):
        ref = ScenarioRunner(tiny_loh3.with_overrides(kernels="ref"))
        ref.run()
        opt = ScenarioRunner(tiny_loh3.with_overrides(kernels="opt"))
        opt.run()
        assert np.array_equal(opt.solver.dofs, ref.solver.dofs)
        for receiver in ref.receivers.receivers:
            ts, vs = receiver.seismogram()
            to, vo = opt.receivers[receiver.name].seismogram()
            assert np.array_equal(ts, to) and np.array_equal(vs, vo)

    def test_f32_seismograms_match_f64_within_tolerance(self, tiny_loh3):
        """The documented f32 accuracy contract: LOH.3-style seismograms at
        f32 match the f64 run within 5e-4 of the peak amplitude (a few
        hundred single-precision roundings over the run)."""
        f64 = ScenarioRunner(tiny_loh3)
        f64.run()
        for kernels in ("ref", "opt"):
            f32 = ScenarioRunner(
                tiny_loh3.with_overrides(precision="f32", kernels=kernels)
            )
            f32.run()
            for receiver in f64.receivers.receivers:
                t64, v64 = receiver.seismogram()
                t32, v32 = f32.receivers[receiver.name].seismogram()
                assert v32.dtype == np.float32
                assert np.array_equal(t64, t32)  # sampling times are f64 exact
                scale = np.abs(v64).max()
                assert np.abs(v32.astype(np.float64) - v64).max() <= 5e-4 * scale

    def test_resume_kernels_override(self, tiny_loh3, tmp_path):
        path = tmp_path / "ckpt.npz"
        spec = tiny_loh3.with_overrides(kernels="ref")
        full = ScenarioRunner(spec)
        full.run()
        half = ScenarioRunner(spec)
        for _ in range(2):
            half.step_cycle()
        half.save_checkpoint(path)
        resumed = ScenarioRunner.resume(path, kernels="opt")
        assert resumed.spec.solver.kernels == "opt"
        resumed.run()
        assert np.array_equal(resumed.solver.dofs, full.solver.dofs)

    def test_resume_kernels_override_rejected_for_f32(self, tiny_loh3, tmp_path):
        """f32 kernel backends are only tolerance-equal, so switching them on
        resume would break the bit-identical-continuation guarantee."""
        path = tmp_path / "f32.ckpt.npz"
        runner = ScenarioRunner(
            tiny_loh3.with_overrides(precision="f32", kernels="ref", n_cycles=1)
        )
        runner.step_cycle()
        runner.save_checkpoint(path)
        with pytest.raises(ValueError, match="f32"):
            ScenarioRunner.resume(path, kernels="opt")
        # a no-op override (same backend) stays allowed
        assert ScenarioRunner.resume(path, kernels="ref").spec.solver.kernels == "ref"

    def test_cli_run_with_kernels_flag(self, tmp_path, capsys):
        out = tmp_path / "out"
        code = cli_main(
            [
                "run", "plane_wave", "--smoke", "--kernels", "opt",
                "--precision", "f32", "--output-dir", str(out), "--quiet",
            ]
        )
        assert code == 0
        summary = json.loads((out / "run_summary.json").read_text())
        assert summary["kernels"] == "opt" and summary["precision"] == "f32"


class TestSeismogramHeaders:
    def test_header_variants(self):
        assert seismogram_header(0) == "time,vx,vy,vz"
        assert seismogram_header(3) == "time,vx,vy,vz"
        assert (
            seismogram_header(6) == "time,vx_0,vx_1,vy_0,vy_1,vz_0,vz_1"
        )
        with pytest.raises(ValueError):
            seismogram_header(4)

    def _receiver_with_samples(self, samples):
        receiver = Receiver(name="r0", location=np.zeros(3), element=0)
        for t, sample in enumerate(samples):
            receiver.times.append(float(t))
            receiver.samples.append(np.asarray(sample))
        return receiver

    def _write(self, receiver, tmp_path):
        class Shim:
            receivers = [receiver]

        (path,) = write_seismograms(Shim(), tmp_path)
        lines = path.read_text().strip().splitlines()
        return lines[0], lines[1:]

    def test_fused_header_matches_flattened_column_order(self, tmp_path):
        samples = [np.arange(6.0).reshape(3, 2) * (i + 1) for i in range(2)]
        header, rows = self._write(self._receiver_with_samples(samples), tmp_path)
        assert header == "time,vx_0,vx_1,vy_0,vy_1,vz_0,vz_1"
        values = np.loadtxt(tmp_path / "seismogram_r0.csv", delimiter=",", skiprows=1)
        # row-major flatten of (3, 2): vx_0, vx_1, vy_0, ...
        assert np.array_equal(values[0, 1:], samples[0].reshape(-1))

    def test_n_fused_1_is_consistent_with_scalar(self, tmp_path):
        fused1 = [np.arange(3.0).reshape(3, 1), np.arange(3.0).reshape(3, 1) * 2]
        header_fused, _ = self._write(self._receiver_with_samples(fused1), tmp_path)
        scalar = [np.arange(3.0), np.arange(3.0) * 2]
        header_scalar, _ = self._write(self._receiver_with_samples(scalar), tmp_path)
        assert header_fused == header_scalar == "time,vx,vy,vz"

    def test_empty_recording_writes_header_only(self, tmp_path):
        header, rows = self._write(self._receiver_with_samples([]), tmp_path)
        assert header == "time,vx,vy,vz"
        assert rows == []

    def test_fused_runner_outputs_round_trip(self, tiny_loh3, tmp_path):
        runner = ScenarioRunner(tiny_loh3.with_overrides(n_fused=2, n_cycles=1))
        runner.run()
        paths = write_seismograms(runner.receivers, tmp_path)
        for path in paths:
            header = path.read_text().splitlines()[0]
            assert header == "time,vx_0,vx_1,vy_0,vy_1,vz_0,vz_1"
            table = np.loadtxt(path, delimiter=",", skiprows=1)
            assert table.shape[1] == 7


class TestFusedSlotDemux:
    """CSV demux of fused recordings into per-slot scalar seismograms."""

    def _receiver(self, samples):
        receiver = Receiver(name="r0", location=np.zeros(3), element=0)
        for t, sample in enumerate(samples):
            receiver.times.append(float(t))
            receiver.samples.append(np.asarray(sample))
        return receiver

    def _shim(self, *receivers):
        class Shim:
            pass

        shim = Shim()
        shim.receivers = list(receivers)
        return shim

    @pytest.mark.parametrize("width", [1, 2, 4])
    def test_demux_slices_each_slot_with_scalar_header(self, width, tmp_path):
        rng = np.random.default_rng(width)
        samples = [rng.normal(size=(3, width)) for _ in range(5)]
        receivers = self._shim(self._receiver(samples))
        for f in range(width):
            out = tmp_path / f"slot{f}"
            (path,) = write_fused_slot_seismograms(receivers, out, slot=f)
            header, *rows = path.read_text().strip().splitlines()
            assert header == "time,vx,vy,vz"
            table = np.loadtxt(path, delimiter=",", skiprows=1)
            expected = np.stack([s[:, f] for s in samples])
            np.testing.assert_array_equal(table[:, 1:], expected)

    @pytest.mark.parametrize("width", [1, 2, 4])
    def test_demuxed_csv_byte_identical_to_scalar_writer(self, width, tmp_path):
        """Each demuxed slot file must be the exact bytes the scalar writer
        produces for that slot's samples (the --fuse demux contract)."""
        rng = np.random.default_rng(7 + width)
        samples = [rng.normal(size=(3, width)) for _ in range(4)]
        fused = self._shim(self._receiver(samples))
        for f in range(width):
            (demuxed,) = write_fused_slot_seismograms(fused, tmp_path / f"d{f}", slot=f)
            scalar = self._shim(self._receiver([s[:, f] for s in samples]))
            (direct,) = write_seismograms(scalar, tmp_path / f"s{f}")
            assert demuxed.read_bytes() == direct.read_bytes()

    def test_unrecorded_station_keeps_scalar_header(self, tmp_path):
        """A station never hit by a local step records nothing; both writers
        emit the scalar-header empty CSV for it (no fused columns)."""
        fused = self._shim(self._receiver([]))
        (demuxed,) = write_fused_slot_seismograms(fused, tmp_path / "d", slot=1)
        (direct,) = write_seismograms(fused, tmp_path / "s")
        assert demuxed.read_text().strip() == "time,vx,vy,vz"
        assert demuxed.read_bytes() == direct.read_bytes()

    def test_mixed_recorded_and_unrecorded_stations(self, tmp_path):
        rng = np.random.default_rng(3)
        recorded = self._receiver([rng.normal(size=(3, 2)) for _ in range(3)])
        silent = Receiver(name="r1", location=np.zeros(3), element=1)
        paths = write_fused_slot_seismograms(self._shim(recorded, silent), tmp_path, slot=0)
        assert [p.name for p in paths] == ["seismogram_r0.csv", "seismogram_r1.csv"]
        assert paths[1].read_text().strip() == "time,vx,vy,vz"
        assert len(paths[0].read_text().strip().splitlines()) == 4

    def test_demux_of_scalar_recording_raises(self, tmp_path):
        scalar = self._shim(self._receiver([np.arange(3.0) for _ in range(2)]))
        with pytest.raises(ValueError, match="nothing to demux"):
            write_fused_slot_seismograms(scalar, tmp_path, slot=0)


class TestBenchHostMetadata:
    def test_record_bench_stamps_host_metadata(self, tmp_path, monkeypatch):
        spec = importlib.util.spec_from_file_location(
            "bench_conftest", Path(__file__).parents[2] / "benchmarks" / "conftest.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        monkeypatch.setattr(module, "RESULTS_DIR", tmp_path)
        module.record_bench("unit_test_point", wall_s=1.25, kernels="opt", precision="f32")
        payload = json.loads((tmp_path / "BENCH_unit_test_point.json").read_text())
        assert payload["wall_s"] == 1.25
        assert payload["kernels"] == "opt" and payload["precision"] == "f32"
        host = payload["host"]
        assert host["cpu_count"] >= 1
        assert host["numpy"] == np.__version__
        assert "python" in host and "platform" in host

"""Fast kernel mode through the scenario layer: CLI, checkpoints, verify.

The fast backend is spec-addressable (``--kernels fast``), deterministic
(checkpoint resume continues bit-identically *within* fast mode), and
fenced (resume refuses to silently switch between fast and a bit-exact
backend mid-run).  The ``repro verify`` subcommand is the shipping bar.
"""

import numpy as np
import pytest

import repro.verification.golden as golden_module
from repro.scenarios import ScenarioRunner, get_scenario
from repro.scenarios.cli import main


@pytest.fixture()
def tiny_plane_wave():
    return get_scenario(
        "plane_wave", extent_m=1500.0, characteristic_length=750.0, order=2, n_cycles=4
    )


class TestFastThroughRunner:
    def test_summary_reports_fast_and_tracks_reference(self, tiny_plane_wave):
        fast = ScenarioRunner(tiny_plane_wave.with_overrides(kernels="fast"))
        s_fast = fast.run()
        assert s_fast["kernels"] == "fast"
        ref = ScenarioRunner(tiny_plane_wave.with_overrides(kernels="ref"))
        ref.run()
        scale = np.abs(ref.solver.dofs).max()
        err = np.abs(fast.solver.dofs - ref.solver.dofs).max()
        assert 0.0 <= err <= 1e-12 * scale
        # the analytic accuracy block agrees to the same fidelity
        assert s_fast["accuracy"]["rel_l2"] == pytest.approx(
            ref.summary()["accuracy"]["rel_l2"], rel=1e-9
        )

    def test_checkpoint_resume_continues_fast_bitwise(self, tiny_plane_wave, tmp_path):
        spec = tiny_plane_wave.with_overrides(kernels="fast")
        path = tmp_path / "fast.ckpt.npz"
        full = ScenarioRunner(spec)
        full.run()
        half = ScenarioRunner(spec)
        for _ in range(2):
            half.step_cycle()
        half.save_checkpoint(path)
        resumed = ScenarioRunner.resume(path)
        assert resumed.spec.solver.kernels == "fast"
        resumed.run()
        # fast is deterministic: the continuation replays the same GEMMs
        assert np.array_equal(resumed.solver.dofs, full.solver.dofs)

    @pytest.mark.parametrize(
        "checkpointed,override", [("ref", "fast"), ("fast", "ref"), ("fast", "opt")]
    )
    def test_resume_refuses_crossing_the_bit_identity_fence(
        self, tiny_plane_wave, tmp_path, checkpointed, override
    ):
        path = tmp_path / "x.ckpt.npz"
        runner = ScenarioRunner(tiny_plane_wave.with_overrides(kernels=checkpointed))
        runner.step_cycle()
        runner.save_checkpoint(path)
        with pytest.raises(ValueError, match="fast"):
            ScenarioRunner.resume(path, kernels=override)

    def test_resume_still_allows_ref_opt_swap(self, tiny_plane_wave, tmp_path):
        path = tmp_path / "r.ckpt.npz"
        runner = ScenarioRunner(tiny_plane_wave.with_overrides(kernels="ref"))
        runner.step_cycle()
        runner.save_checkpoint(path)
        resumed = ScenarioRunner.resume(path, kernels="opt")
        assert resumed.spec.solver.kernels == "opt"


class TestVerifyCli:
    def test_run_accepts_fast(self, capsys):
        rc = main(["run", "plane_wave", "--smoke", "--kernels", "fast", "--quiet"])
        assert rc == 0

    def test_verify_golden_scenario_passes(self, capsys):
        assert main(["verify", "loh3", "--kernels", "fast", "--quiet"]) == 0

    def test_verify_unknown_scenario_is_input_error(self, capsys):
        assert main(["verify", "does_not_exist", "--quiet"]) == 2

    def test_verify_failure_sets_exit_code(self, monkeypatch, capsys):
        # an impossible ladder: even the reassociation floor fails it
        monkeypatch.setitem(
            golden_module.SCENARIO_TOLERANCES, "la_habra", {("fast", "f64"): 0.0}
        )
        assert main(["verify", "la_habra", "--kernels", "fast", "--quiet"]) == 1

    def test_update_golden_writes_fixtures(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setattr(golden_module, "FIXTURES_DIR", tmp_path)
        assert main(["verify", "la_habra", "--update-golden", "--quiet"]) == 0
        assert (tmp_path / "golden_la_habra.json").exists()

"""Integration tests of the instrumentation subsystem through the runners.

The claims under test:

* the run summary gains a ``telemetry`` block whose phase breakdown covers
  the wall clock and whose counters reproduce the exact element-update
  accounting of the solver,
* per-rank metrics merged across the serial and the process execution
  backends equal the single-rank totals (instrumentation never changes, nor
  mis-attributes, the work),
* ``--trace`` produces a valid Chrome-trace timeline with one lane per rank
  plus the driver lane, and
* telemetry stays off (and out of the summary) by default.
"""

import json
import os

import numpy as np
import pytest

from repro.observability import validate_chrome_trace
from repro.scenarios import ScenarioRunner, get_scenario, make_runner
from repro.scenarios.cli import main as cli_main


@pytest.fixture(scope="module")
def tiny_loh3():
    """A small multi-cluster LOH.3 variant that partitions into 2 ranks."""
    return get_scenario(
        "loh3",
        extent_m=4000.0,
        characteristic_length=2000.0,
        order=2,
        n_mechanisms=1,
        lam=1.0,
        n_clusters=2,
        n_cycles=3,
    )


@pytest.fixture(scope="module")
def single_rank_telemetry(tiny_loh3):
    runner = ScenarioRunner(tiny_loh3.with_overrides(telemetry=True))
    summary = runner.run()
    return runner, summary


class TestSummaryTelemetryBlock:
    def test_off_by_default(self, tiny_loh3):
        runner = ScenarioRunner(tiny_loh3)
        assert not runner.telemetry.enabled
        assert "telemetry" not in runner.run()

    def test_phases_cover_the_wall_clock(self, single_rank_telemetry):
        _, summary = single_rank_telemetry
        block = summary["telemetry"]
        assert set(block["phases"]) >= {"predict", "correct"}
        assert all(t >= 0.0 for t in block["phases"].values())
        assert block["phase_sum_s"] == pytest.approx(sum(block["phases"].values()))
        assert 0.0 < block["coverage"] <= 1.05
        if not os.environ.get("CI"):
            # acceptance criterion: phase times sum to within 5% of the wall
            # clock (kept off CI where a loaded machine skews the ratio)
            assert block["coverage"] > 0.6

    def test_update_counters_match_solver_accounting(self, single_rank_telemetry):
        runner, summary = single_rank_telemetry
        counters = summary["telemetry"]["counters"]
        per_cluster = {
            name: value for name, value in counters.items()
            if name.startswith("updates/cluster")
        }
        # one counter per *populated* cluster (a cluster may end up empty)
        assert 1 <= len(per_cluster) <= runner.clustering.n_clusters
        assert sum(per_cluster.values()) == summary["element_updates"]

    def test_kernel_regions_are_recorded(self, single_rank_telemetry):
        _, summary = single_rank_telemetry
        regions = summary["telemetry"]["regions"]
        kernel_regions = {name for name in regions if "kernel." in name}
        assert any(name.endswith("kernel.ck") for name in kernel_regions)
        assert any(name.endswith("kernel.surface_neighbor") for name in kernel_regions)

    def test_derived_rates(self, single_rank_telemetry):
        _, summary = single_rank_telemetry
        derived = summary["telemetry"]["derived"]
        assert derived["element_updates_per_s"] > 0.0
        assert derived["flops_per_element_update"] > 0
        assert derived["gflop"] == pytest.approx(
            summary["element_updates"] * derived["flops_per_element_update"] / 1e9
        )
        assert derived["gflop_per_s"] == pytest.approx(
            derived["gflop"] / summary["telemetry"]["wall_s"]
        )

    def test_preprocessing_stages_timed(self, tiny_loh3):
        # the runner routes its spec-built mesh through steps 3-6 of the
        # pipeline; meshing/material sampling are timed by the full pipeline
        # (covered below)
        runner = ScenarioRunner(
            tiny_loh3.with_overrides(telemetry=True, n_partitions=2, reorder=True)
        )
        regions = runner.telemetry.regions()
        for stage in ("time_steps", "clustering", "partition", "reorder"):
            assert f"preprocess.{stage}" in regions

    def test_full_pipeline_times_meshing_and_materials(self):
        from repro.observability import Telemetry
        from repro.preprocessing.pipeline import PreprocessingPipeline
        from repro.preprocessing.velocity_model import loh3_model

        telemetry = Telemetry()
        PreprocessingPipeline(
            velocity_model=loh3_model(),
            extent=(0.0, 4000.0, 0.0, 4000.0, -4000.0, 0.0),
            max_frequency=0.75,
            order=2,
            n_clusters=2,
            lam=1.0,
            telemetry=telemetry,
        ).run()
        regions = telemetry.regions()
        for stage in ("mesh", "materials", "time_steps", "clustering",
                      "partition", "reorder"):
            assert f"preprocess.{stage}" in regions

    def test_memory_block_always_present(self, tiny_loh3):
        summary = ScenarioRunner(tiny_loh3).summary()
        assert summary["memory"]["peak_rss_mb"] > 0.0


class TestCheckpointCounters:
    def test_checkpoint_writes_and_bytes(self, tiny_loh3, tmp_path):
        path = tmp_path / "telemetry.ckpt.npz"
        runner = ScenarioRunner(tiny_loh3.with_overrides(telemetry=True))
        runner.step_cycle()
        runner.save_checkpoint(path)
        counters = runner.telemetry.metrics.counters
        assert counters["checkpoint/writes"] == 1
        assert counters["checkpoint/bytes"] == os.path.getsize(path)
        assert "checkpoint.write" in runner.telemetry.regions()


@pytest.mark.distributed
class TestCrossRankMerge:
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_merged_totals_equal_single_rank(
        self, tiny_loh3, single_rank_telemetry, backend
    ):
        _, single = single_rank_telemetry
        dist = make_runner(
            tiny_loh3.with_overrides(n_ranks=2, backend=backend, telemetry=True)
        )
        summary = dist.run()
        block = summary["telemetry"]
        single_updates = {
            name: value
            for name, value in single["telemetry"]["counters"].items()
            if name.startswith("updates/")
        }
        merged_updates = {
            name: value
            for name, value in block["counters"].items()
            if name.startswith("updates/")
        }
        assert merged_updates == single_updates
        # the engines count their measured halo traffic into the block
        assert block["counters"]["comm/messages"] > 0
        assert block["counters"]["comm/bytes"] > 0
        # overlapped-exchange phases appear alongside the driver lane
        assert set(block["phases"]) >= {
            "predict.boundary", "send", "predict.interior", "correct",
        }
        assert block["recv_wait_s"] >= 0.0
        lanes = {lane["lane"] for lane in block["lanes"]}
        assert lanes >= {"rank 0", "rank 1", "driver"}

    def test_process_backend_merge_survives_worker_release(self, tiny_loh3):
        dist = make_runner(
            tiny_loh3.with_overrides(n_ranks=2, backend="process", telemetry=True)
        )
        dist.run()  # releases the workers at the end
        merged = dist.engine.merged_telemetry()
        updates = sum(
            value for name, value in merged["counters"].items()
            if name.startswith("updates/")
        )
        assert updates == dist.solver.n_element_updates


@pytest.mark.distributed
class TestChromeTrace:
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_trace_has_one_lane_per_rank_plus_driver(
        self, tiny_loh3, tmp_path, backend
    ):
        dist = make_runner(
            tiny_loh3.with_overrides(n_ranks=2, backend=backend, trace=True)
        )
        dist.run()
        path = dist.write_trace(tmp_path / "run.trace.json")
        payload = json.loads(path.read_text())
        by_lane = validate_chrome_trace(payload, expect_lanes=3)
        assert set(by_lane) == {"rank 0", "rank 1", "driver"}
        assert all(count > 0 for count in by_lane.values())
        # the per-rank lanes carry the micro-step schedule
        names = {
            event["args"]["path"]
            for event in payload["traceEvents"]
            if event["ph"] == "X"
        }
        assert names >= {"predict.boundary", "send", "predict.interior", "correct"}

    def test_trace_implies_telemetry(self, tiny_loh3):
        spec = tiny_loh3.with_overrides(trace=True)
        assert spec.output.telemetry and spec.output.trace


class TestCliTelemetry:
    ARGS = [
        "plane_wave",
        "--set", "extent_m=1500.0",
        "--set", "characteristic_length=750.0",
        "--order", "2",
        "--cycles", "2",
    ]

    def test_metrics_flag_adds_summary_block(self, tmp_path):
        out_dir = tmp_path / "out"
        assert cli_main(
            ["run", *self.ARGS, "--metrics", "--quiet", "--output-dir", str(out_dir)]
        ) == 0
        summary = json.loads((out_dir / "run_summary.json").read_text())
        assert summary["telemetry"]["phase_sum_s"] > 0.0
        assert summary["memory"]["peak_rss_mb"] > 0.0

    def test_trace_flag_writes_valid_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "run.trace.json"
        out_dir = tmp_path / "out"
        assert cli_main(
            ["run", *self.ARGS, "--trace", str(trace_path),
             "--output-dir", str(out_dir)]
        ) == 0
        validate_chrome_trace(json.loads(trace_path.read_text()), expect_lanes=1)
        banner = capsys.readouterr().err
        assert "peak RSS" in banner and str(trace_path) in banner

    def test_resume_with_metrics(self, tmp_path):
        ckpt = tmp_path / "cli.ckpt.npz"
        out_dir = tmp_path / "out"
        assert cli_main(
            ["run", *self.ARGS, "--checkpoint", str(ckpt), "--quiet"]
        ) == 0
        assert cli_main(
            ["resume", str(ckpt), "--metrics", "--quiet",
             "--output-dir", str(out_dir)]
        ) == 0
        summary = json.loads((out_dir / "run_summary.json").read_text())
        # the resumed (no-op) segment still reports the telemetry block
        assert "telemetry" in summary

    def test_instrumentation_does_not_change_physics(self, tiny_loh3):
        plain = ScenarioRunner(tiny_loh3)
        instrumented = ScenarioRunner(tiny_loh3.with_overrides(trace=True))
        plain.run()
        instrumented.run()
        np.testing.assert_array_equal(instrumented.solver.dofs, plain.solver.dofs)

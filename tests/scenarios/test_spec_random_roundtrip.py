"""Randomized JSON round-trip tests for ScenarioSpec / SolverSpec.

Seeded parameter sampling over the full solver option lattice (kernels x
precision x backend x ranks x fused width and the run/clustering knobs):
every *valid* sampled spec must survive ``to_json -> from_json`` losslessly
(dataclass equality), and every *invalid* combination must be rejected at
construction -- never silently normalised into something runnable.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.scenarios.registry import scenario_names, get_scenario
from repro.scenarios.spec import (
    SOLVER_BACKENDS,
    SOLVER_COMMS,
    SOLVER_KERNELS,
    SOLVER_KINDS,
    SOLVER_PRECISIONS,
    ClusteringSpec,
    RunSpec,
    ScenarioSpec,
    SolverSpec,
)


def _sample_solver_kwargs(rng):
    """One random draw from the solver option lattice (valid or not)."""
    kind = rng.choice(SOLVER_KINDS)
    n_ranks = int(rng.choice([1, 1, 2, 3, 4]))
    return dict(
        kind=str(kind),
        n_fused=int(rng.choice([0, 1, 2, 4])),
        flux=str(rng.choice(["rusanov", "godunov"])),
        cfl=float(rng.uniform(0.05, 1.0)),
        n_ranks=n_ranks,
        backend=str(rng.choice(SOLVER_BACKENDS)),
        comm=str(rng.choice(SOLVER_COMMS)),
        comm_timeout=(
            None if rng.random() < 0.5 else float(rng.uniform(0.1, 600.0))
        ),
        kernels=str(rng.choice(SOLVER_KERNELS)),
        precision=str(rng.choice(SOLVER_PRECISIONS)),
    )


def _is_valid_solver(kwargs) -> bool:
    if kwargs["n_ranks"] > 1 and kwargs["kind"] == "gts":
        return False
    if kwargs["backend"] == "process" and kwargs["n_ranks"] < 2:
        return False
    if kwargs["comm"] != "queue" and kwargs["backend"] != "process":
        return False
    return True


class TestRandomSolverSpecs:
    def test_sampled_lattice_round_trips_or_rejects(self):
        rng = np.random.default_rng(20260730)
        n_valid = n_invalid = 0
        for _ in range(300):
            kwargs = _sample_solver_kwargs(rng)
            if _is_valid_solver(kwargs):
                solver = SolverSpec(**kwargs)
                n_valid += 1
                payload = json.loads(json.dumps(dataclasses.asdict(solver)))
                assert SolverSpec(**payload) == solver
            else:
                n_invalid += 1
                with pytest.raises(ValueError):
                    SolverSpec(**kwargs)
        # the seed must actually exercise both sides of the lattice
        assert n_valid > 100 and n_invalid > 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kind="gts", n_ranks=2),
            dict(backend="process", n_ranks=1),
            dict(comm="shm"),
            dict(comm="mpi", backend="process", n_ranks=2),
            dict(comm_timeout=-1.0),
            dict(kernels="native"),
            dict(precision="f16"),
            dict(n_fused=-1),
            dict(cfl=0.0),
            dict(n_ranks=0),
        ],
        ids=lambda kw: next(iter(kw.items()))[0] + "=" + str(next(iter(kw.values()))),
    )
    def test_known_invalid_combinations_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SolverSpec(**kwargs)


class TestRandomScenarioSpecs:
    def test_registry_scenarios_with_random_solver_options_round_trip(self):
        """Full ScenarioSpec round-trips with random (valid) solver/run/
        clustering overrides layered onto every registered scenario."""
        rng = np.random.default_rng(7)
        checked = 0
        for name in scenario_names():
            base = get_scenario(name)
            for _ in range(16):
                kwargs = _sample_solver_kwargs(rng)
                if not _is_valid_solver(kwargs):
                    continue
                spec = dataclasses.replace(
                    base,
                    solver=SolverSpec(**kwargs),
                    clustering=ClusteringSpec(
                        n_clusters=int(rng.integers(1, 5)),
                        lam=float(rng.uniform(0.51, 1.0)) if rng.random() < 0.5 else None,
                    ),
                    run=(
                        RunSpec(n_cycles=int(rng.integers(1, 9)))
                        if rng.random() < 0.5
                        else RunSpec(n_cycles=None, t_end=float(rng.uniform(0.01, 2.0)))
                    ),
                )
                again = ScenarioSpec.from_json(spec.to_json())
                assert again == spec
                # and a second round trip is a fixed point
                assert ScenarioSpec.from_json(again.to_json()) == again
                checked += 1
        assert checked >= 30

    def test_solver_overrides_survive_dict_round_trip(self):
        spec = get_scenario("plane_wave").with_overrides(
            kernels="fast", precision="f32", n_ranks=3, backend="process"
        )
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again.solver.kernels == "fast"
        assert again.solver.precision == "f32"
        assert again.solver.n_ranks == 3
        assert again.solver.backend == "process"
        assert again == spec
        # free_surface (new DomainSpec field) round-trips too
        assert again.domain.free_surface is False

"""End-to-end tests of the run ledger, heartbeat and ``repro report``.

The crash-durability claim is tested for real: a 2-rank process-backend run
is SIGKILLed mid-flight and its partial ledger must still parse and
validate.  The report CLI is driven over an instrumented distributed run
plus a GTS reference, asserting the overlap / imbalance / LTS-speedup
blocks the paper's evaluation reads off.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.observability import read_ledger, validate_run_ledger
from repro.scenarios import ScenarioRunner, get_scenario
from repro.scenarios.cli import main as cli_main

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: the tiny LOH.3 variant all CLI runs here use (matches the CI smoke)
TINY_LOH3 = (
    "--set", "extent_m=4000.0", "--set", "characteristic_length=2000.0",
    "--set", "n_mechanisms=1", "--order", "2", "--clusters", "2",
    "--lambda", "0.8",
)


@pytest.fixture(scope="module")
def traced_runs(tmp_path_factory):
    """One instrumented 2-rank process run + a GTS reference, via the CLI."""
    base = tmp_path_factory.mktemp("report_runs")
    lts_dir, gts_dir = base / "lts_out", base / "gts_out"
    events = lts_dir / "events.jsonl"
    assert cli_main(
        ["run", "loh3", *TINY_LOH3, "--cycles", "3", "--ranks", "2",
         "--backend", "process", "--events", str(events),
         "--output-dir", str(lts_dir), "--quiet"]
    ) == 0
    assert cli_main(
        ["run", "loh3", *TINY_LOH3, "--cycles", "3", "--solver", "gts",
         "--metrics", "--output-dir", str(gts_dir), "--quiet"]
    ) == 0
    return lts_dir, gts_dir


class TestOutputSpecSemantics:
    def test_events_implies_telemetry_and_round_trips(self):
        from repro.scenarios.spec import ScenarioSpec

        spec = get_scenario("loh3").with_overrides(events="out/run.jsonl", progress=True)
        assert spec.output.telemetry  # recv-wait columns need the timers
        assert spec.output.progress
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.output.events == "out/run.jsonl"

    def test_progress_alone_does_not_enable_telemetry(self):
        spec = get_scenario("loh3").with_overrides(progress=True)
        assert spec.output.progress and not spec.output.telemetry


class TestLedgerEndToEnd:
    def test_interrupted_run_resumes_into_a_second_segment(self, tmp_path, monkeypatch):
        """A checkpointed run killed mid-flight leaves a partial first
        segment; the resumed run appends a second segment that completes
        the same ledger file."""
        events = tmp_path / "run.jsonl"
        ckpt = tmp_path / "run.ckpt.npz"
        spec = get_scenario(
            "loh3", extent_m=4000.0, characteristic_length=2000.0, order=2,
            n_mechanisms=1, lam=1.0, n_clusters=2, n_cycles=4,
        ).with_overrides(events=str(events))

        runner = ScenarioRunner(spec)
        original = runner.save_checkpoint

        def save_then_die(path):
            original(path)
            raise KeyboardInterrupt

        monkeypatch.setattr(runner, "save_checkpoint", save_then_die)
        with pytest.raises(KeyboardInterrupt):
            runner.run(checkpoint_path=ckpt, checkpoint_every=2)

        partial = validate_run_ledger(read_ledger(events))
        assert partial == {
            "segments": 1, "cycles": 2, "complete": False,
            "last_cycle": partial["last_cycle"],
        }

        resumed = ScenarioRunner.resume(ckpt, events=str(events))
        resumed.run()
        records = read_ledger(events)
        info = validate_run_ledger(records, expect_complete=True)
        assert info["segments"] == 2
        assert info["cycles"] == 4
        assert info["last_cycle"]["cycle"] == 4
        headers = [r for r in records if r["kind"] == "header"]
        assert [h["run"]["resumed_at_cycle"] for h in headers] == [0, 2]

    def test_sigkilled_process_run_leaves_valid_partial_ledger(self, tmp_path):
        """SIGKILL -- no atexit, no finally -- mid-run: the flushed JSONL
        ledger must still parse, modulo a torn last line."""
        events = tmp_path / "killed.jsonl"
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "run", "loh3", *TINY_LOH3,
             "--cycles", "200", "--ranks", "2", "--backend", "process",
             "--events", str(events), "--quiet"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if events.exists() and sum(
                    1 for line in events.read_text().splitlines() if '"cycle"' in line
                ) >= 3:
                    break
                if proc.poll() is not None:
                    pytest.fail(f"run exited early with rc {proc.returncode}")
                time.sleep(0.1)
            else:
                pytest.fail("ledger never reached 3 cycle records")
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        records = read_ledger(events)
        info = validate_run_ledger(records)  # must not raise
        assert info["segments"] == 1
        assert info["cycles"] >= 2
        assert not info["complete"]
        header = records[0]
        assert header["run"]["backend"] == "process" and header["run"]["n_ranks"] == 2
        # the distributed records carry the comm accounting
        assert records[1]["comm_bytes"] > 0
        assert len(records[1]["sent_bytes_per_rank"]) == 2


class TestProgressHeartbeat:
    def test_cli_progress_writes_heartbeat_to_stderr(self, tmp_path, capsys):
        assert cli_main(
            ["run", "loh3", *TINY_LOH3, "--cycles", "2", "--progress", "--quiet"]
        ) == 0
        err = capsys.readouterr().err
        assert "[loh3] cycle 2/2" in err
        assert "updates/s" in err and "ETA" in err


class TestReportCli:
    def test_instrumented_run_writes_ledger_and_report_artefacts(self, traced_runs):
        lts_dir, _ = traced_runs
        summary = json.loads((lts_dir / "run_summary.json").read_text())
        assert summary["provenance"]["spec_sha256"]
        assert summary["events"] == str(lts_dir / "events.jsonl")
        info = validate_run_ledger(
            read_ledger(lts_dir / "events.jsonl"), expect_complete=True
        )
        assert info["cycles"] == 3
        # instrumented runs precompute their report next to the summary
        report = json.loads((lts_dir / "report.json").read_text())
        assert report["blocks"]["overlap"]["efficiency"] > 0.0

    def test_report_renders_all_derived_blocks(self, traced_runs, capsys):
        lts_dir, gts_dir = traced_runs
        assert cli_main(["report", str(lts_dir), str(gts_dir)]) == 0
        out = capsys.readouterr().out
        assert "LTS speedup:" in out
        assert "measured wall-clock speedup" in out  # the GTS reference was used
        assert "Overlap efficiency" in out
        assert "rank 0:" in out and "rank 1:" in out
        assert "Load imbalance across ranks:" in out
        assert "Kernel stages" in out
        assert "Ledger: 3 cycle records in 1 segment(s), complete" in out
        assert "== comparison (baseline:" in out

    def test_report_json_payload(self, traced_runs, capsys):
        lts_dir, gts_dir = traced_runs
        assert cli_main(["report", str(lts_dir), str(gts_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        lts_entry = payload["runs"][0]
        blocks = lts_entry["blocks"]
        assert blocks["overlap"] is not None and len(blocks["overlap"]["ranks"]) == 2
        assert blocks["imbalance"] is not None
        assert blocks["lts_speedup"]["measured"] is not None
        assert blocks["ledger"]["complete"] is True
        assert blocks["ledger"]["comm_bytes"] > 0
        # the GTS entry contributes the reference but no LTS blocks
        gts_entry = payload["runs"][1]
        assert gts_entry["blocks"]["lts_speedup"] is None
        assert payload["comparison"]["rows"][1]["speedup_vs_first"] is not None

    def test_report_on_bare_ledger(self, traced_runs, capsys):
        lts_dir, _ = traced_runs
        assert cli_main(["report", str(lts_dir / "events.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "Ledger: 3 cycle records" in out

    def test_report_on_missing_run_is_an_input_error(self, tmp_path, capsys):
        assert cli_main(["report", str(tmp_path / "nope")]) == 2
        capsys.readouterr()

"""The content-addressed preprocessing cache: keying, stability, bit-identity.

The keying tests pin the contract the sweep service leans on: two specs
that differ only in source location share every preprocessing artifact,
observability knobs never split the cache, and changing the mesh h or the
material options misses exactly the stages whose result they determine.
The bit-identity tests assert that cached runs are indistinguishable from
uncached ones -- DOFs and all.
"""

import numpy as np
import pytest

from repro.preprocessing.cache import (
    PreprocessingCache,
    STAGES,
    result_content_hash,
    stage_key,
    warm_preprocessing,
)
from repro.observability import spec_content_hash
from repro.scenarios import get_scenario
from repro.scenarios.runner import ScenarioRunner, build_setup, make_runner
from repro.scenarios.spec import ScenarioSpec


def tiny_loh3(**factory):
    """The tiny LOH.3 variant of the CLI smokes, as a runnable spec."""
    factory = {
        "extent_m": 4000.0, "characteristic_length": 2000.0, "n_mechanisms": 1,
        **factory,
    }
    return get_scenario("loh3", **factory).with_overrides(
        order=2, n_clusters=2, lam=0.8, n_cycles=2
    )


def moved_source(spec, location=(500.0, 250.0, -1500.0)):
    data = spec.to_dict()
    data["source"]["location"] = list(location)
    return ScenarioSpec.from_dict(data)


def all_stage_keys(spec):
    return {stage: stage_key(spec, stage) for stage in STAGES}


class TestStageKeys:
    def test_source_location_shares_every_stage(self):
        spec = tiny_loh3()
        assert all_stage_keys(spec) == all_stage_keys(moved_source(spec))

    def test_output_knobs_never_split_the_cache(self):
        spec = tiny_loh3()
        instrumented = spec.with_overrides(
            events="out/run.jsonl", telemetry=True, progress=True
        )
        assert all_stage_keys(spec) == all_stage_keys(instrumented)
        assert result_content_hash(spec) == result_content_hash(instrumented)
        # ...unlike the full-spec content hash, which does see the output block
        assert spec_content_hash(spec) != spec_content_hash(instrumented)

    def test_defaults_filled_json_round_trip_is_stable(self):
        spec = tiny_loh3()
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert all_stage_keys(spec) == all_stage_keys(rebuilt)
        assert result_content_hash(spec) == result_content_hash(rebuilt)

    def test_dict_key_order_does_not_matter(self):
        spec = tiny_loh3()
        shuffled = {key: spec.to_dict()[key] for key in reversed(list(spec.to_dict()))}
        assert all_stage_keys(spec) == all_stage_keys(ScenarioSpec.from_dict(shuffled))

    def test_mesh_h_misses_every_stage(self):
        a = all_stage_keys(tiny_loh3())
        b = all_stage_keys(tiny_loh3(characteristic_length=1000.0))
        for stage in STAGES:
            assert a[stage] != b[stage], stage

    def test_material_fields_miss_only_downstream_stages(self):
        a, spec = all_stage_keys(tiny_loh3()), tiny_loh3()
        # n_mechanisms shapes the assembled operators but not the mesh,
        # the sampled material table or the CFL clustering
        b = all_stage_keys(tiny_loh3(n_mechanisms=2))
        assert b["mesh"] == a["mesh"]
        assert b["materials"] == a["materials"]
        assert b["clustering"] == a["clustering"]
        assert b["operators"] != a["operators"]
        # the anelastic switch strips the sampled table itself
        c = all_stage_keys(
            ScenarioSpec.from_dict(
                {**spec.to_dict(), "material": {**spec.to_dict()["material"],
                                                "anelastic": False}}
            )
        )
        assert c["mesh"] == a["mesh"]
        assert c["materials"] != a["materials"]
        assert c["operators"] != a["operators"]

    def test_precision_misses_only_operators(self):
        a = all_stage_keys(tiny_loh3())
        b = all_stage_keys(tiny_loh3().with_overrides(precision="f32"))
        assert b["mesh"] == a["mesh"]
        assert b["materials"] == a["materials"]
        assert b["clustering"] == a["clustering"]
        assert b["operators"] != a["operators"]

    def test_reordered_layout_gets_its_own_operator_entry(self):
        spec = tiny_loh3().with_overrides(n_partitions=2, reorder=True)
        assert stage_key(spec, "operators") != stage_key(
            spec, "operators", layout="reordered"
        )

    def test_unknown_stage_and_layout_raise(self):
        spec = tiny_loh3()
        with pytest.raises(ValueError, match="stage"):
            stage_key(spec, "nope")
        with pytest.raises(ValueError, match="layout"):
            stage_key(spec, "operators", layout="sideways")


class TestCacheBitIdentity:
    def test_shared_mesh_members_load_bit_identical_artifacts(self, tmp_path):
        spec_a = tiny_loh3()
        spec_b = moved_source(spec_a)
        cache_a = PreprocessingCache(tmp_path)
        setup_a = build_setup(spec_a, cache=cache_a)
        assert all(c["misses"] >= 0 for c in cache_a.stats.values())

        cache_b = PreprocessingCache(tmp_path)
        setup_b = build_setup(spec_b, cache=cache_b)
        for stage in ("mesh", "materials", "operators"):
            assert cache_b.stats[stage] == {"hits": 1, "misses": 0}, stage
        assert np.array_equal(setup_a.mesh.vertices, setup_b.mesh.vertices)
        assert np.array_equal(setup_a.mesh.elements, setup_b.mesh.elements)
        assert np.array_equal(setup_a.materials.rho, setup_b.materials.rho)
        for name, array in setup_a.disc.operator_arrays().items():
            assert np.array_equal(array, setup_b.disc.operator_arrays()[name]), name

        clustering_a = cache_a.clustering(spec_a, setup_a.clustering)
        clustering_b = cache_b.clustering(spec_b, setup_b.clustering)
        assert cache_b.stats["clustering"] == {"hits": 1, "misses": 0}
        assert np.array_equal(clustering_a.cluster_ids, clustering_b.cluster_ids)
        assert np.array_equal(
            clustering_a.cluster_time_steps, clustering_b.cluster_time_steps
        )

    def test_differing_mesh_h_misses_on_disk(self, tmp_path):
        cache = PreprocessingCache(tmp_path)
        warm_preprocessing(tiny_loh3(), cache)
        other = PreprocessingCache(tmp_path)
        build_setup(tiny_loh3(characteristic_length=1000.0), cache=other)
        for stage in ("mesh", "materials", "operators"):
            assert other.stats[stage]["misses"] == 1, stage

    def test_cached_run_is_bit_identical_to_uncached(self, tmp_path):
        spec = tiny_loh3()
        plain = ScenarioRunner(spec)
        plain_summary = plain.run()

        cold = ScenarioRunner(spec, cache=PreprocessingCache(tmp_path))
        cold_summary = cold.run()
        warm_cache = PreprocessingCache(tmp_path)
        warm = ScenarioRunner(spec, cache=warm_cache)
        warm_summary = warm.run()

        assert all(c["misses"] == 0 for c in warm_cache.stats.values())
        assert np.array_equal(plain.solver.dofs, cold.solver.dofs)
        assert np.array_equal(plain.solver.dofs, warm.solver.dofs)
        for key in ("t_end", "element_updates", "lambda", "n_clusters", "n_elements"):
            assert plain_summary[key] == cold_summary[key] == warm_summary[key], key

    def test_preprocessed_run_is_bit_identical_to_uncached(self, tmp_path):
        spec = tiny_loh3().with_overrides(n_partitions=2, reorder=True)
        plain = make_runner(spec)
        plain.run()

        stats = warm_preprocessing(spec, PreprocessingCache(tmp_path))
        assert stats["partition"]["misses"] == 1
        warm_cache = PreprocessingCache(tmp_path)
        warm = make_runner(spec, cache=warm_cache)
        warm.run()
        assert warm_cache.is_warm(spec)
        assert all(c["misses"] == 0 for c in warm_cache.stats.values())
        assert np.array_equal(plain.solver.dofs, warm.solver.dofs)
        assert np.array_equal(
            plain.clustering.cluster_ids, warm.clustering.cluster_ids
        )
        assert np.array_equal(plain.preprocessed.partitions, warm.preprocessed.partitions)

    def test_is_warm_tracks_every_needed_stage(self, tmp_path):
        spec = tiny_loh3()
        cache = PreprocessingCache(tmp_path)
        assert not cache.is_warm(spec)
        warm_preprocessing(spec, cache)
        assert cache.is_warm(spec)
        # the reordered variant needs two more artifacts
        reordered = spec.with_overrides(n_partitions=2, reorder=True)
        assert not cache.is_warm(reordered)
        warm_preprocessing(reordered, cache)
        assert cache.is_warm(reordered)

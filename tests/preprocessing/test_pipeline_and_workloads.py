"""Unit/integration tests for velocity models, the preprocessing pipeline,
partition IO and the workload setups."""

import numpy as np
import pytest

from repro.preprocessing.partition_io import list_partitions, read_partition, write_partitions
from repro.preprocessing.pipeline import PreprocessingPipeline
from repro.preprocessing.velocity_model import LaHabraBasinModel, Layer, LayeredVelocityModel, loh3_model
from repro.workloads.la_habra import (
    PAPER_CLUSTER_COUNTS,
    PAPER_LAMBDA,
    PAPER_SPEEDUP,
    la_habra_time_step_distribution,
)
from repro.workloads.loh3 import loh3_setup


class TestVelocityModels:
    def test_loh3_parameters(self):
        model = loh3_model()
        sample = model.sample(np.array([[0.0, 0.0, -500.0], [0.0, 0.0, -2000.0]]))
        np.testing.assert_allclose(sample["vs"], [2000.0, 3464.0])
        np.testing.assert_allclose(sample["vp"], [4000.0, 6000.0])
        np.testing.assert_allclose(sample["qs"], [40.0, 69.3])
        np.testing.assert_allclose(sample["qp"], [120.0, 155.9])
        np.testing.assert_allclose(sample["rho"], [2600.0, 2700.0])

    def test_layered_model_validation(self):
        with pytest.raises(ValueError):
            LayeredVelocityModel([])

    def test_la_habra_basin_structure(self):
        model = LaHabraBasinModel(extent=(0.0, 10000.0, 0.0, 10000.0), min_vs=250.0)
        surface_center = model.sample(np.array([[5000.0, 5000.0, -10.0]]))
        surface_edge = model.sample(np.array([[100.0, 100.0, -10.0]]))
        deep = model.sample(np.array([[5000.0, 5000.0, -6000.0]]))
        # slow sediments in the basin centre, fast rock at the edge and at depth
        assert surface_center["vs"][0] < 400.0
        assert surface_edge["vs"][0] > 2000.0
        assert deep["vs"][0] > 3000.0
        assert surface_center["qs"][0] < deep["qs"][0]

    def test_min_shear_velocity_profile(self):
        model = LaHabraBasinModel(extent=(0.0, 10000.0, 0.0, 10000.0), min_vs=250.0)
        assert model.min_shear_velocity(0.0) == pytest.approx(250.0)
        assert model.min_shear_velocity(-10000.0) > 3000.0


class TestPreprocessingPipeline:
    @pytest.fixture(scope="class")
    def model(self):
        pipeline = PreprocessingPipeline(
            velocity_model=loh3_model(),
            extent=(0.0, 6000.0, 0.0, 6000.0, -6000.0, 0.0),
            max_frequency=1.5,
            elements_per_wavelength=2.0,
            order=4,
            n_clusters=3,
            n_partitions=4,
            optimize_lambda_increment=0.05,
        )
        return pipeline.run()

    def test_pipeline_produces_consistent_model(self, model):
        assert model.n_elements > 50
        assert model.materials.n_elements == model.n_elements
        assert model.time_steps.shape == (model.n_elements,)
        assert model.clustering.counts.sum() == model.n_elements
        assert model.partitions.shape == (model.n_elements,)
        summary = model.summary()
        assert summary["theoretical_speedup"] >= 1.0
        assert summary["n_partitions"] == 4

    def test_reordering_sorts_by_partition_then_cluster(self, model):
        partitions = model.partitions
        clusters = model.clustering.cluster_ids
        assert np.all(np.diff(partitions) >= 0)
        for p in np.unique(partitions):
            mask = partitions == p
            assert np.all(np.diff(clusters[mask]) >= 0)

    def test_partition_io_roundtrip(self, model, tmp_path):
        paths = write_partitions(model, tmp_path)
        assert len(paths) == 4
        assert list_partitions(tmp_path) == paths
        total = 0
        for path in paths:
            data = read_partition(path)
            total += len(data["element_ids"])
            assert data["rho"].shape == data["time_steps"].shape
            assert int(data["order"]) == model.order
        assert total == model.n_elements

    def test_read_missing_partition_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_partition(tmp_path / "nope.npz")


class TestLoh3Workload:
    def test_setup_reproduces_paper_material_contrast(self):
        setup = loh3_setup(extent_m=6000.0, characteristic_length=2000.0, order=3)
        layer = setup.mesh.centroids[:, 2] > -1000.0
        assert layer.any() and (~layer).any()
        np.testing.assert_allclose(np.unique(setup.materials.vs[layer]), [2000.0])
        np.testing.assert_allclose(np.unique(setup.materials.vs[~layer]), [3464.0])
        # layer elements advance with smaller time steps -> at least 2 clusters
        clustering = setup.clustering(n_clusters=3, lam=1.0)
        assert np.count_nonzero(clustering.counts) >= 2
        assert clustering.speedup() > 1.1

    def test_lambda_optimisation_does_not_hurt(self):
        setup = loh3_setup(extent_m=6000.0, characteristic_length=2000.0, order=3)
        fixed = setup.clustering(n_clusters=3, lam=1.0)
        best = setup.clustering(n_clusters=3, lam=None)
        assert best.speedup() >= fixed.speedup() - 1e-12

    def test_elastic_variant_has_no_memory_variables(self):
        setup = loh3_setup(extent_m=6000.0, characteristic_length=2000.0, order=3, anelastic=False)
        assert setup.disc.n_mechanisms == 0
        assert setup.disc.n_vars == 9


class TestLaHabraWorkload:
    def test_synthetic_distribution_matches_paper_clustering(self):
        """Clustering the synthetic time-step sample with the paper's N_c = 5 and
        lambda = 0.81 must reproduce the published cluster fractions and the
        ~5.4x theoretical speedup."""
        from repro.core.clustering import derive_clustering

        dts = la_habra_time_step_distribution(n_elements=100_000, seed=1)
        clustering = derive_clustering(dts, 5, PAPER_LAMBDA)
        fractions = clustering.counts / clustering.counts.sum()
        paper_fractions = PAPER_CLUSTER_COUNTS / PAPER_CLUSTER_COUNTS.sum()
        np.testing.assert_allclose(fractions, paper_fractions, atol=0.03)
        assert abs(clustering.speedup() - PAPER_SPEEDUP) / PAPER_SPEEDUP < 0.15

    def test_distribution_properties(self):
        dts = la_habra_time_step_distribution(n_elements=5000, seed=3, dt_min=0.01)
        assert len(dts) == 5000
        assert dts.min() == pytest.approx(0.01)
        assert dts.max() / dts.min() > 8.0
        with pytest.raises(ValueError):
            la_habra_time_step_distribution(n_elements=3)

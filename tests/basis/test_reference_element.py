"""Unit tests for the reference-element operator matrices."""

import numpy as np
import pytest

from repro.basis.quadrature import triangle_quadrature
from repro.basis.reference_element import (
    FACE_VERTEX_IDS,
    REFERENCE_VERTICES,
    ReferenceElement,
    reference_element,
)


@pytest.fixture(scope="module", params=[2, 3, 4])
def ref_elem(request):
    return reference_element(request.param)


class TestMassAndStiffness:
    def test_mass_is_identity(self, ref_elem):
        np.testing.assert_allclose(ref_elem.mass, np.eye(ref_elem.n_basis), atol=1e-10)

    def test_stiffness_shapes(self, ref_elem):
        B = ref_elem.n_basis
        assert ref_elem.k_time.shape == (3, B, B)
        assert ref_elem.k_vol.shape == (3, B, B)

    def test_time_kernel_operator_differentiates_exactly(self, ref_elem):
        """Right-multiplying modal coefficients by k_time_c must equal the
        L2 projection of the xi_c derivative (exact, since the derivative of a
        degree O-1 polynomial is degree O-2 and lies in the space)."""
        order = ref_elem.order
        quad = ref_elem.volume_quadrature
        psi = ref_elem.basis.evaluate(quad.points)
        dpsi = ref_elem.basis.evaluate_gradient(quad.points)
        rng = np.random.default_rng(3)
        coeffs = rng.normal(size=(2, ref_elem.n_basis))
        for c in range(3):
            derived = coeffs @ ref_elem.k_time[c]
            values = np.einsum("vb,qb->qv", derived, psi)
            expected = np.einsum("vb,qb->qv", coeffs, dpsi[:, :, c])
            np.testing.assert_allclose(values, expected, atol=1e-9)

    def test_volume_is_transpose_related_to_time(self, ref_elem):
        # With an orthonormal basis, k_vol_c = k_time_c^T.
        for c in range(3):
            np.testing.assert_allclose(
                ref_elem.k_vol[c], ref_elem.k_time[c].T, atol=1e-10
            )

    def test_constant_mode_has_zero_derivative_row(self, ref_elem):
        # d/dxi of the constant mode vanishes -> first row of k_time is zero.
        for c in range(3):
            np.testing.assert_allclose(ref_elem.k_time[c][0, :], 0.0, atol=1e-10)


class TestFaceOperators:
    def test_face_parametrization_hits_vertices(self, ref_elem):
        for face, (ia, ib, ic) in enumerate(FACE_VERTEX_IDS):
            corners = ref_elem.face_parametrization(face, np.array([[0, 0], [1, 0], [0, 1]]))
            np.testing.assert_allclose(corners[0], REFERENCE_VERTICES[ia])
            np.testing.assert_allclose(corners[1], REFERENCE_VERTICES[ib])
            np.testing.assert_allclose(corners[2], REFERENCE_VERTICES[ic])

    def test_ftilde_fhat_consistency(self, ref_elem):
        """The two-step surface projection must reproduce the one-step face
        mass matrix: F̃_i F̃_i^T == ∫ psi_b psi_b' du dv (paper Sec. V-C)."""
        for i in range(4):
            product = ref_elem.ftilde[i] @ ref_elem.ftilde[i].T
            np.testing.assert_allclose(product, ref_elem.fsurf[i], atol=1e-10)

    def test_fhat_is_inverse_mass_times_ftilde_transposed(self, ref_elem):
        for i in range(4):
            np.testing.assert_allclose(
                ref_elem.fhat[i], ref_elem.ftilde[i].T @ ref_elem.inv_mass, atol=1e-12
            )

    def test_shapes_match_paper_dimensions(self):
        elem = reference_element(5)
        assert elem.ftilde.shape == (4, 35, 15)
        assert elem.fhat.shape == (4, 15, 35)

    def test_trace_projection_exact_for_polynomials(self, ref_elem):
        """Projecting an element polynomial's trace onto the face basis and
        evaluating it back must reproduce the trace pointwise."""
        rng = np.random.default_rng(11)
        coeffs = rng.normal(size=(1, ref_elem.n_basis))
        quad = triangle_quadrature(ref_elem.order + 2)
        chi = ref_elem.face_basis.evaluate(quad.points)
        for i in range(4):
            face_coeffs = coeffs @ ref_elem.ftilde[i]  # (1, F)
            trace_from_face = face_coeffs @ chi.T  # (1, nqf)
            pts = ref_elem.face_parametrization(i, quad.points)
            trace_direct = coeffs @ ref_elem.basis.evaluate(pts).T
            np.testing.assert_allclose(trace_from_face, trace_direct, atol=1e-9)


class TestProjection:
    def test_project_and_evaluate_roundtrip(self):
        elem = reference_element(4)

        def func(pts):
            x, y, z = pts.T
            return np.stack([x**2 + y, 2.0 * z**3 - x * y], axis=1)

        coeffs = elem.project_function(func)
        pts = np.array([[0.1, 0.2, 0.3], [0.3, 0.3, 0.1]])
        values = elem.evaluate_solution(coeffs, pts)
        np.testing.assert_allclose(values, func(pts).T, atol=1e-10)

    def test_reference_element_cache(self):
        assert reference_element(3) is reference_element(3)

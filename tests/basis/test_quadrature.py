"""Unit tests for simplex quadrature rules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.basis.quadrature import tetrahedron_quadrature, triangle_quadrature


def _monomial_integral_triangle(i, j):
    """Exact integral of x^i y^j over the reference triangle."""
    from math import factorial

    return factorial(i) * factorial(j) / factorial(i + j + 2)


def _monomial_integral_tet(i, j, k):
    """Exact integral of x^i y^j z^k over the reference tetrahedron."""
    from math import factorial

    return factorial(i) * factorial(j) * factorial(k) / factorial(i + j + k + 3)


class TestTriangleQuadrature:
    def test_total_weight_is_area(self):
        quad = triangle_quadrature(4)
        np.testing.assert_allclose(np.sum(quad.weights), 0.5, rtol=1e-13)

    def test_points_inside(self):
        quad = triangle_quadrature(6)
        x, y = quad.points[:, 0], quad.points[:, 1]
        assert np.all(x > 0) and np.all(y > 0) and np.all(x + y < 1)

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_monomial_exactness(self, n):
        quad = triangle_quadrature(n)
        for i in range(n):
            for j in range(n - i):
                val = np.sum(quad.weights * quad.points[:, 0] ** i * quad.points[:, 1] ** j)
                np.testing.assert_allclose(val, _monomial_integral_triangle(i, j), rtol=1e-11)

    def test_integrate_helper(self):
        quad = triangle_quadrature(3)
        values = np.ones((quad.n_points, 2))
        result = quad.integrate(values)
        np.testing.assert_allclose(result, [0.5, 0.5])


class TestTetrahedronQuadrature:
    def test_total_weight_is_volume(self):
        quad = tetrahedron_quadrature(4)
        np.testing.assert_allclose(np.sum(quad.weights), 1.0 / 6.0, rtol=1e-13)

    def test_points_inside(self):
        quad = tetrahedron_quadrature(6)
        x, y, z = quad.points.T
        assert np.all(x > 0) and np.all(y > 0) and np.all(z > 0)
        assert np.all(x + y + z < 1)

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_monomial_exactness(self, n):
        quad = tetrahedron_quadrature(n)
        for i in range(min(n, 4)):
            for j in range(min(n - i, 4)):
                for k in range(min(n - i - j, 4)):
                    val = np.sum(
                        quad.weights
                        * quad.points[:, 0] ** i
                        * quad.points[:, 1] ** j
                        * quad.points[:, 2] ** k
                    )
                    np.testing.assert_allclose(val, _monomial_integral_tet(i, j, k), rtol=1e-11)

    @given(n=st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_weights_positive(self, n):
        quad = tetrahedron_quadrature(n)
        assert np.all(quad.weights > 0)

    def test_caching_returns_same_object(self):
        assert tetrahedron_quadrature(3) is tetrahedron_quadrature(3)

"""Unit tests for the orthonormal modal basis on simplices."""

import numpy as np
import pytest

from repro.basis.functions import (
    TetBasis,
    TriBasis,
    basis_size,
    face_basis_size,
    tet_basis_indices,
    tri_basis_indices,
)
from repro.basis.quadrature import tetrahedron_quadrature, triangle_quadrature


class TestBasisCounts:
    @pytest.mark.parametrize("order,expected", [(1, 1), (2, 4), (3, 10), (4, 20), (5, 35)])
    def test_tet_basis_size_matches_paper(self, order, expected):
        assert basis_size(order) == expected
        assert len(tet_basis_indices(order)) == expected

    @pytest.mark.parametrize("order,expected", [(1, 1), (2, 3), (3, 6), (4, 10), (5, 15)])
    def test_face_basis_size_matches_paper(self, order, expected):
        assert face_basis_size(order) == expected
        assert len(tri_basis_indices(order)) == expected

    def test_hierarchical_ordering(self):
        # the order-3 index list must be a prefix of the order-5 list
        assert tet_basis_indices(5)[: basis_size(3)] == tet_basis_indices(3)

    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            basis_size(0)
        with pytest.raises(ValueError):
            TetBasis(0)


class TestTetBasisOrthonormality:
    @pytest.mark.parametrize("order", [1, 2, 3, 4, 5])
    def test_mass_matrix_is_identity(self, order):
        basis = TetBasis(order)
        quad = tetrahedron_quadrature(order + 2)
        psi = basis.evaluate(quad.points)
        mass = np.einsum("q,qb,qc->bc", quad.weights, psi, psi)
        np.testing.assert_allclose(mass, np.eye(basis.size), atol=1e-10)

    @pytest.mark.parametrize("order", [2, 4])
    def test_first_function_is_constant(self, order):
        basis = TetBasis(order)
        pts = np.array([[0.1, 0.2, 0.3], [0.25, 0.25, 0.25], [0.05, 0.1, 0.7]])
        vals = basis.evaluate(pts)[:, 0]
        # constant = 1 / sqrt(volume) = sqrt(6)
        np.testing.assert_allclose(vals, np.sqrt(6.0) * np.ones(3), rtol=1e-12)

    @pytest.mark.parametrize("order", [2, 3, 5])
    def test_spans_polynomials(self, order):
        """Any polynomial of degree <= order-1 must be exactly representable."""
        basis = TetBasis(order)
        quad = tetrahedron_quadrature(order + 2)
        psi = basis.evaluate(quad.points)
        x, y, z = quad.points.T
        target = (1.0 + 0.5 * x - y + 2.0 * z) ** (order - 1)
        coeffs = np.einsum("q,q,qb->b", quad.weights, target, psi)
        reconstructed = psi @ coeffs
        np.testing.assert_allclose(reconstructed, target, atol=1e-9)


class TestTetBasisGradient:
    @pytest.mark.parametrize("order", [2, 3, 4, 5])
    def test_gradient_matches_finite_difference(self, order):
        basis = TetBasis(order)
        rng = np.random.default_rng(7)
        pts = rng.dirichlet(np.ones(4), size=20)[:, :3] * 0.9 + 0.02
        grad = basis.evaluate_gradient(pts)
        h = 1e-6
        for d in range(3):
            shift = np.zeros(3)
            shift[d] = h
            fd = (basis.evaluate(pts + shift) - basis.evaluate(pts - shift)) / (2 * h)
            np.testing.assert_allclose(grad[:, :, d], fd, atol=5e-5)

    def test_gradient_of_constant_mode_is_zero(self):
        basis = TetBasis(4)
        pts = np.array([[0.2, 0.3, 0.1]])
        grad = basis.evaluate_gradient(pts)
        np.testing.assert_allclose(grad[:, 0, :], 0.0, atol=1e-12)


class TestTriBasis:
    @pytest.mark.parametrize("order", [1, 2, 3, 4, 5])
    def test_orthonormal_on_reference_triangle(self, order):
        basis = TriBasis(order)
        quad = triangle_quadrature(order + 2)
        chi = basis.evaluate(quad.points)
        mass = np.einsum("q,qa,qb->ab", quad.weights, chi, chi)
        np.testing.assert_allclose(mass, np.eye(basis.size), atol=1e-10)

    def test_spans_face_polynomials(self):
        order = 4
        basis = TriBasis(order)
        quad = triangle_quadrature(order + 2)
        chi = basis.evaluate(quad.points)
        u, v = quad.points.T
        target = (0.3 + u - 2.0 * v) ** (order - 1)
        coeffs = np.einsum("q,q,qf->f", quad.weights, target, chi)
        np.testing.assert_allclose(chi @ coeffs, target, atol=1e-10)

"""Unit tests for Jacobi polynomials and Gauss quadrature."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.basis.jacobi import gauss_jacobi, gauss_legendre, jacobi, jacobi_derivative


class TestJacobiValues:
    def test_degree_zero_is_one(self):
        x = np.linspace(-1, 1, 11)
        np.testing.assert_allclose(jacobi(0, 0.3, 1.2, x), np.ones_like(x))

    def test_degree_one_linear(self):
        x = np.linspace(-1, 1, 11)
        alpha, beta = 1.5, 0.5
        expected = 0.5 * (alpha - beta + (alpha + beta + 2) * x)
        np.testing.assert_allclose(jacobi(1, alpha, beta, x), expected)

    def test_legendre_special_case_matches_numpy(self):
        x = np.linspace(-1, 1, 21)
        for n in range(6):
            coeffs = np.zeros(n + 1)
            coeffs[n] = 1.0
            expected = np.polynomial.legendre.legval(x, coeffs)
            np.testing.assert_allclose(jacobi(n, 0.0, 0.0, x), expected, atol=1e-12)

    def test_value_at_one(self):
        # P_n^{(a,b)}(1) = binom(n + a, n)
        from math import comb

        for n in range(6):
            for a in (0, 1, 2):
                expected = comb(n + a, n)
                np.testing.assert_allclose(jacobi(n, float(a), 0.0, np.array([1.0]))[0], expected)

    def test_negative_degree_raises(self):
        with pytest.raises(ValueError):
            jacobi(-1, 0.0, 0.0, np.array([0.0]))

    @given(
        n=st.integers(min_value=0, max_value=7),
        alpha=st.floats(min_value=0.0, max_value=4.0),
        x=st.floats(min_value=-1.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_on_interval(self, n, alpha, x):
        """Jacobi polynomials with beta=0, alpha>=0 attain their max at x=1."""
        val = jacobi(n, alpha, 0.0, np.array([x]))[0]
        at_one = jacobi(n, alpha, 0.0, np.array([1.0]))[0]
        assert abs(val) <= at_one + 1e-9


class TestJacobiDerivative:
    @pytest.mark.parametrize("n", range(6))
    @pytest.mark.parametrize("alpha,beta", [(0.0, 0.0), (1.0, 0.0), (3.0, 0.0), (2.0, 1.0)])
    def test_matches_finite_difference(self, n, alpha, beta):
        x = np.linspace(-0.9, 0.9, 13)
        h = 1e-6
        fd = (jacobi(n, alpha, beta, x + h) - jacobi(n, alpha, beta, x - h)) / (2 * h)
        np.testing.assert_allclose(jacobi_derivative(n, alpha, beta, x), fd, atol=1e-6)

    def test_derivative_of_constant_is_zero(self):
        x = np.linspace(-1, 1, 5)
        np.testing.assert_array_equal(jacobi_derivative(0, 2.0, 0.0, x), np.zeros_like(x))


class TestQuadrature:
    @pytest.mark.parametrize("n", [1, 2, 4, 6])
    def test_gauss_legendre_exactness(self, n):
        x, w = gauss_legendre(n)
        for degree in range(2 * n):
            exact = (1.0 - (-1.0) ** (degree + 1)) / (degree + 1)
            np.testing.assert_allclose(np.sum(w * x**degree), exact, atol=1e-12)

    @pytest.mark.parametrize("alpha", [1.0, 2.0])
    def test_gauss_jacobi_weight_mass(self, alpha):
        # integral of (1-x)^alpha over [-1, 1] equals 2^(alpha+1) / (alpha+1)
        x, w = gauss_jacobi(4, alpha, 0.0)
        np.testing.assert_allclose(np.sum(w), 2.0 ** (alpha + 1) / (alpha + 1), rtol=1e-12)

    def test_gauss_jacobi_polynomial_exactness(self):
        alpha = 1.0
        n = 5
        x, w = gauss_jacobi(n, alpha, 0.0)
        rng = np.random.default_rng(42)
        coeffs = rng.normal(size=2 * n)
        poly = np.polynomial.Polynomial(coeffs)
        # reference via very fine Gauss-Legendre on the weighted integrand
        xr, wr = gauss_legendre(60)
        ref = np.sum(wr * (1 - xr) ** alpha * poly(xr))
        np.testing.assert_allclose(np.sum(w * poly(x)), ref, rtol=1e-10)

    def test_invalid_point_count_raises(self):
        with pytest.raises(ValueError):
            gauss_legendre(0)
        with pytest.raises(ValueError):
            gauss_jacobi(0, 1.0, 0.0)

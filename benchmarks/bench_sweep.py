"""Sweep service: what the content-addressed preprocessing cache buys.

A 4-member shared-mesh ensemble (source-location axis on a small LOH.3
box) is run through ``run_sweep`` twice: once cold (empty cache -- the
parent prewarm pays mesh/operator/clustering assembly) and once against
the already-warm cache directory.  The committed BENCH point carries the
cold vs warm preprocessing walls and both end-to-end sweep walls, so the
amortisation the sweep service is built around is tracked across PRs.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

from repro.preprocessing.cache import PreprocessingCache
from repro.scenarios import get_scenario
from repro.scenarios.runner import build_setup
from repro.sweep import SweepAxis, SweepSpec, read_manifest, run_sweep

from conftest import record_bench, record_result

LOCATIONS = [
    [0.0, 0.0, -2000.0],
    [1000.0, 0.0, -2000.0],
    [0.0, 1000.0, -2000.0],
    [500.0, 500.0, -1000.0],
]


def _sweep():
    base = get_scenario(
        "loh3",
        extent_m=8000.0,
        characteristic_length=1500.0,
        order=3,
        n_mechanisms=3,
        jitter=0.2,
        n_clusters=3,
        lam=1.0,
        n_cycles=2,
    )
    return SweepSpec(
        base=base,
        axes=[SweepAxis(path="source.location", values=LOCATIONS)],
        name="bench-source-sweep",
    )


def test_sweep_cache_amortisation():
    sweep = _sweep()
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        cache_dir = tmp / "cache"

        cold_tally = run_sweep(
            sweep, tmp / "cold", workers=0, cache_dir=cache_dir, events=False
        )
        assert cold_tally["done"] == 4 and cold_tally["failed"] == 0
        assert cold_tally["prewarmed"] == 1  # one signature pays preprocessing
        records = read_manifest(tmp / "cold" / "manifest.jsonl")
        prewarm = next(r for r in records if r["record"] == "prewarm")
        cold_preprocess_wall = prewarm["wall_s"]
        member_rows = [r for r in records
                       if r["record"] == "member" and r["status"] == "done"]
        assert all(
            counters["misses"] == 0
            for row in member_rows for counters in row["cache"].values()
        )

        # warm preprocessing wall: one member's full setup straight from disk
        warm_cache = PreprocessingCache(cache_dir)
        start = time.perf_counter()
        setup = build_setup(sweep.expand()[0].spec, cache=warm_cache)
        warm_cache.clustering(sweep.expand()[0].spec, setup.clustering)
        warm_preprocess_wall = time.perf_counter() - start
        assert all(c["misses"] == 0 for c in warm_cache.stats.values())

        warm_tally = run_sweep(
            sweep, tmp / "warm", workers=0, cache_dir=cache_dir, events=False
        )
        assert warm_tally["done"] == 4 and warm_tally["prewarmed"] == 0

    payload = {
        "n_members": 4,
        "n_elements": setup.mesh.n_elements,
        "cold_preprocess_wall_s": cold_preprocess_wall,
        "warm_preprocess_wall_s": warm_preprocess_wall,
        "preprocess_speedup": cold_preprocess_wall / warm_preprocess_wall,
        "cold_sweep_wall_s": cold_tally["wall_s"],
        "warm_sweep_wall_s": warm_tally["wall_s"],
    }
    record_result("sweep_cache_amortisation", payload)
    record_bench("sweep_cache_loh3", wall_s=cold_tally["wall_s"], **payload)

    # wall-clock asserts stay off shared CI runners; locally the warm path
    # must beat rebuilding -- that is the whole point of the cache
    if not os.environ.get("CI"):
        assert warm_preprocess_wall < cold_preprocess_wall, payload

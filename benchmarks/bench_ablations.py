"""Ablation studies of the LTS design choices called out in the paper.

* lambda grid search (Sec. V-A): speedup as a function of lambda,
* number of clusters N_c (the user-set, open-ended clustering),
* normalisation loss (< 1.5 % claim), and
* fused ensemble width vs per-simulation throughput.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.clustering import assign_clusters, derive_clustering, normalize_clusters
from repro.core.gts_solver import GlobalTimeSteppingSolver
from repro.core.speedup import normalization_loss
from repro.workloads.la_habra import PAPER_LAMBDA, la_habra_time_step_distribution

from conftest import record_result


def test_ablation_lambda_sweep(benchmark):
    dts = la_habra_time_step_distribution(n_elements=100_000, seed=7)

    def sweep():
        out = {}
        for lam in np.arange(0.55, 1.0001, 0.05):
            lam = min(float(lam), 1.0)
            out[round(lam, 2)] = derive_clustering(dts, 5, lam).speedup()
        return out

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    best_lambda = max(speedups, key=speedups.get)
    record_result(
        "ablation_lambda_sweep",
        {"speedup_by_lambda": speedups, "best_lambda": best_lambda, "paper_lambda": PAPER_LAMBDA},
    )
    assert speedups[best_lambda] >= speedups[1.0]
    assert abs(best_lambda - PAPER_LAMBDA) <= 0.15


def test_ablation_cluster_count(benchmark):
    dts = la_habra_time_step_distribution(n_elements=100_000, seed=8)

    def sweep():
        return {n: derive_clustering(dts, n, PAPER_LAMBDA).speedup() for n in (1, 2, 3, 4, 5, 6, 8)}

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_result("ablation_cluster_count", {"speedup_by_n_clusters": speedups})
    # a single cluster at lambda < 1 advances everything at lambda * dt_min
    assert speedups[1] == pytest.approx(PAPER_LAMBDA, rel=1e-6)
    # speedup saturates: going from 5 to 8 clusters gains little (paper: 3-5 suffice)
    assert speedups[5] > 0.9 * speedups[8]
    assert speedups[5] > 1.5 * speedups[2]


def test_ablation_normalization_loss(benchmark, loh3_small):
    setup = loh3_small
    dts = setup.time_steps

    def run():
        raw = assign_clusters(dts, 3, 1.0)
        normalized = normalize_clusters(raw, setup.mesh.neighbors)
        cluster_dts = dts.min() * 2.0 ** np.arange(3)
        return raw, normalized, cluster_dts

    raw, normalized, cluster_dts = benchmark.pedantic(run, rounds=1, iterations=1)
    loss = abs(normalization_loss(raw, normalized, cluster_dts))
    moved = int(np.count_nonzero(raw != normalized))
    record_result(
        "ablation_normalization_loss",
        {"loss": loss, "elements_moved": moved, "paper_bound": 0.015},
    )
    # the paper reports < 1.5 % on production meshes; the scaled mesh stays small too
    assert loss < 0.06


def test_ablation_fused_width(benchmark, loh3_small):
    disc = loh3_small.disc
    t_end = 3 * float(disc.time_steps.min())

    def measure(width):
        start = time.perf_counter()
        GlobalTimeSteppingSolver(disc, n_fused=width).run(t_end)
        return time.perf_counter() - start

    single = benchmark.pedantic(lambda: measure(0), rounds=1, iterations=1)
    results = {"1": single}
    for width in (2, 4, 8):
        results[str(width)] = measure(width)
    per_simulation_speedup = {
        w: single / (t / max(int(w), 1)) for w, t in results.items() if w != "1"
    }
    record_result(
        "ablation_fused_width",
        {"wall_time_s": results, "per_simulation_speedup": per_simulation_speedup},
    )
    # NumPy already vectorises over elements, so fusing small ensembles mainly
    # adds memory traffic here; the paper's 1.8x gain needs register-level sparse
    # vectorisation (LIBXSMM).  Require the fused path to stay within 2x.
    assert per_simulation_speedup["4"] > 0.5
    assert per_simulation_speedup["8"] >= per_simulation_speedup["2"] * 0.7

"""Observability overhead: the disabled path must stay (nearly) free.

The instrumentation of the hot loops (region timers in predict/correct and
in every kernel stage) is compiled in unconditionally; when telemetry is off
each region call is one attribute check returning a shared no-op context
manager.  This bench measures that price on the PR-5 fast-f64 LOH.3 point
(the committed ``BENCH_kernels_fast_f64_loh3.json`` baseline) and records
the enabled/tracing walls next to it, so the committed point tracks the
observability tax across PRs.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
from contextlib import redirect_stderr
from pathlib import Path

from repro.scenarios import ScenarioRunner, get_scenario

from conftest import record_bench, record_result

#: the instrumented-but-disabled wall must stay within 2% of the PR-5
#: pre-instrumentation baseline (plus a jitter allowance off CI)
OVERHEAD_BUDGET = 0.02

BASELINE_POINT = Path(__file__).parent / "results" / "BENCH_kernels_fast_f64_loh3.json"


def _spec(**overrides):
    # identical workload to bench_kernels_fast.py, so the committed PR-5
    # fast_f64_wall_s is directly comparable
    spec = get_scenario(
        "loh3",
        extent_m=8000.0,
        characteristic_length=2000.0,
        order=4,
        n_mechanisms=3,
        jitter=0.2,
        lam=1.0,
        n_clusters=3,
        n_cycles=3,
    )
    return spec.with_overrides(kernels="fast", precision="f64", **overrides)


def _best_wall(spec, repeats: int = 3) -> dict:
    best = None
    for _ in range(repeats):
        summary = ScenarioRunner(spec).run()
        if best is None or summary["wall_s"] < best["wall_s"]:
            best = summary
    return best


def _best_ledger_wall(repeats: int = 3) -> dict:
    """The fully instrumented path: telemetry + JSONL ledger + heartbeat."""
    best = None
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as tmp:
            spec = _spec(events=str(Path(tmp) / "events.jsonl"), progress=True)
            with redirect_stderr(io.StringIO()):  # heartbeat lines stay out of logs
                summary = ScenarioRunner(spec).run()
        if best is None or summary["wall_s"] < best["wall_s"]:
            best = summary
    return best


COMMITTED_POINT = (
    Path(__file__).parent / "results" / "BENCH_observability_overhead_loh3.json"
)

#: the fully instrumented path (ledger + heartbeat) adds one JSON line +
#: flush + one stderr line per macro cycle; allow it that much on top of
#: the committed disabled-path wall (plus the usual jitter allowance)
LEDGER_BUDGET = 0.30


def test_disabled_telemetry_overhead():
    # read the committed point *before* record_bench regenerates it
    committed_wall = None
    if COMMITTED_POINT.exists():
        committed_wall = json.loads(COMMITTED_POINT.read_text())["wall_s"]

    disabled = _best_wall(_spec())
    enabled = _best_wall(_spec(telemetry=True))
    traced = _best_wall(_spec(trace=True))
    ledgered = _best_ledger_wall()

    baseline_wall = None
    if BASELINE_POINT.exists():
        baseline_wall = json.loads(BASELINE_POINT.read_text())["fast_f64_wall_s"]

    overhead_vs_baseline = (
        disabled["wall_s"] / baseline_wall - 1.0 if baseline_wall else None
    )
    record_result(
        "observability_overhead",
        {
            "disabled_wall_s": disabled["wall_s"],
            "enabled_wall_s": enabled["wall_s"],
            "trace_wall_s": traced["wall_s"],
            "ledger_wall_s": ledgered["wall_s"],
            "baseline_fast_f64_wall_s": baseline_wall,
            "overhead_vs_baseline": overhead_vs_baseline,
        },
    )
    record_bench(
        "observability_overhead_loh3",
        wall_s=disabled["wall_s"],
        element_updates_per_s=disabled["element_updates_per_s"],
        n_elements=disabled["n_elements"],
        order=4,
        cycles=disabled["cycles"],
        enabled_wall_s=enabled["wall_s"],
        trace_wall_s=traced["wall_s"],
        ledger_wall_s=ledgered["wall_s"],
        enabled_overhead=enabled["wall_s"] / disabled["wall_s"] - 1.0,
        trace_overhead=traced["wall_s"] / disabled["wall_s"] - 1.0,
        ledger_overhead=ledgered["wall_s"] / disabled["wall_s"] - 1.0,
    )

    # the enabled run's phase accounting must cover its own wall clock
    coverage = enabled["telemetry"]["coverage"]
    assert 0.0 < coverage <= 1.05, coverage

    # wall-clock asserts stay off shared CI runners (the committed BENCH
    # point tracks the trend there); locally the 2% budget is enforced
    # against the committed pre-instrumentation baseline plus a small
    # cross-run jitter allowance
    if not os.environ.get("CI") and baseline_wall is not None:
        assert overhead_vs_baseline <= OVERHEAD_BUDGET + 0.03, (
            f"disabled-telemetry wall {disabled['wall_s']:.4f}s exceeds the "
            f"baseline {baseline_wall:.4f}s by {overhead_vs_baseline:.1%}"
        )
    if not os.environ.get("CI") and committed_wall is not None:
        ledger_vs_committed = ledgered["wall_s"] / committed_wall - 1.0
        assert ledger_vs_committed <= LEDGER_BUDGET, (
            f"ledger+heartbeat wall {ledgered['wall_s']:.4f}s exceeds the "
            f"committed disabled-path point {committed_wall:.4f}s by "
            f"{ledger_vs_committed:.1%}"
        )

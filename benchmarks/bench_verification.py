"""Verification harness as a benchmark: convergence orders + suite timing.

Runs the plane-wave refinement ladder (the ``repro verify plane_wave``
check) at orders 2 and 3 under the reference and the fast kernels, asserts
the fitted orders, and commits the resulting accuracy/throughput point as
``BENCH_verification_plane_wave.json`` -- so the accuracy trajectory (do the
errors or orders move?) is tracked across PRs exactly like the wall-clock
trajectory.
"""

from __future__ import annotations

import time

from repro.verification import plane_wave_convergence

from conftest import record_bench, record_result


def test_convergence_orders_and_committed_point():
    results = {}
    walls = {}
    for order in (2, 3):
        for kernels in ("ref", "fast"):
            start = time.perf_counter()
            study = plane_wave_convergence(order=order, kernels=kernels)
            walls[f"order{order}_{kernels}"] = time.perf_counter() - start
            assert study.passes(), (
                f"order {order} under {kernels} kernels fitted "
                f"{study.estimated_order:.2f}, errors {study.errors}"
            )
            results[f"order{order}_{kernels}"] = study.to_dict()

    # the fast kernels must not cost accuracy: same fitted order as ref
    for order in (2, 3):
        ref = results[f"order{order}_ref"]["estimated_order"]
        fast = results[f"order{order}_fast"]["estimated_order"]
        assert abs(ref - fast) < 0.05, (order, ref, fast)

    record_result("verification_convergence", results)
    record_bench(
        "verification_plane_wave",
        wall_s=sum(walls.values()),
        order2_estimated=results["order2_ref"]["estimated_order"],
        order3_estimated=results["order3_ref"]["estimated_order"],
        order3_fast_estimated=results["order3_fast"]["estimated_order"],
        order3_finest_rel_l2=results["order3_ref"]["errors"][-1],
        order3_finest_rel_l2_fast=results["order3_fast"]["errors"][-1],
        ladder_lengths=results["order3_ref"]["lengths"],
        ladder_wall_s={k: float(v) for k, v in walls.items()},
    )

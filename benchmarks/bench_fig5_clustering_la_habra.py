"""Fig. 5: La Habra time-step distribution, N_c = 5, lambda = 0.81, 5.38x speedup.

The 237.9M-element production mesh cannot be rebuilt offline; the clustering
operates on the per-element time-step array only, so a synthetic sample
calibrated to the published per-cluster counts regenerates the figure's
content (counts, load fractions, theoretical speedup) at full fidelity.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import derive_clustering, optimize_lambda
from repro.workloads.la_habra import (
    PAPER_CLUSTER_COUNTS,
    PAPER_LAMBDA,
    PAPER_SPEEDUP,
    la_habra_time_step_distribution,
)

from conftest import record_result


def test_fig5_la_habra_clustering(benchmark):
    dts = la_habra_time_step_distribution(n_elements=200_000, seed=0)

    clustering = benchmark.pedantic(
        lambda: derive_clustering(dts, 5, PAPER_LAMBDA), rounds=1, iterations=1
    )
    best = optimize_lambda(dts, 5, increment=0.01)

    fractions = clustering.counts / clustering.counts.sum()
    paper_fractions = PAPER_CLUSTER_COUNTS / PAPER_CLUSTER_COUNTS.sum()

    result = {
        "n_elements": len(dts),
        "lambda": PAPER_LAMBDA,
        "counts": clustering.counts,
        "fractions": fractions,
        "paper_fractions": paper_fractions,
        "load_fractions": clustering.load_fractions(),
        "speedup": clustering.speedup(),
        "paper_speedup": PAPER_SPEEDUP,
        "optimal_lambda": best.lam,
        "optimal_speedup": best.speedup(),
    }
    record_result("fig5_clustering_la_habra", result)

    np.testing.assert_allclose(fractions, paper_fractions, atol=0.02)
    assert abs(clustering.speedup() - PAPER_SPEEDUP) / PAPER_SPEEDUP < 0.1

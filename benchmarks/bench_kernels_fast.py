"""Fast-f64 kernel mode: wall clock vs the bit-exact backends.

The tentpole claim of the fast-kernel work: dropping the c_einsum
bit-identity pin (planned/BLAS einsums, batched-GEMM lowering, fused
per-face accumulation) buys real double-precision speed on the LOH.3-style
workload -- beating the ~1.2x opt-f64 point that the bit-exact contraction
order caps.  The committed ``BENCH_kernels_fast_f64_loh3.json`` carries the
three f64 wall clocks (ref / opt / fast), the production fast-f32 point,
and the verification evidence (the golden-trace deviation of the fast run)
next to the speedups.
"""

from __future__ import annotations

import os

import numpy as np

from repro.scenarios import ScenarioRunner, get_scenario
from repro.verification import compare_to_golden

from conftest import record_bench, record_result


def _spec(**overrides):
    spec = get_scenario(
        "loh3",
        extent_m=8000.0,
        characteristic_length=2000.0,
        order=4,
        n_mechanisms=3,
        jitter=0.2,
        lam=1.0,
        n_clusters=3,
        n_cycles=3,
    )
    return spec.with_overrides(**overrides) if overrides else spec


def test_fast_f64_wall_clock_and_verification():
    runs = {}
    summaries = {}
    for kernels, precision in (
        ("ref", "f64"),
        ("opt", "f64"),
        ("fast", "f64"),
        ("fast", "f32"),
    ):
        key = f"{kernels}_{precision}"
        best = None
        for _ in range(2):  # best-of-two tames single-core CI jitter
            runner = ScenarioRunner(_spec(kernels=kernels, precision=precision))
            summary = runner.run()
            if best is None or summary["wall_s"] < best[1]["wall_s"]:
                best = (runner, summary)
        runs[key], summaries[key] = best

    # accuracy first: fast f64 deviates from ref f64 only by reassociation
    scale = np.abs(runs["ref_f64"].solver.dofs).max()
    deviation = float(
        np.abs(runs["fast_f64"].solver.dofs - runs["ref_f64"].solver.dofs).max() / scale
    )
    assert deviation < 1e-12, f"fast f64 drifted {deviation:.2e} from the reference"
    # and the fast mode passes its golden regression (the shipping bar)
    golden = compare_to_golden("loh3", kernels="fast")
    assert golden["passed"], golden

    wall = {key: summaries[key]["wall_s"] for key in summaries}
    speedups = {
        "fast_f64_vs_ref_f64": wall["ref_f64"] / wall["fast_f64"],
        "fast_f64_vs_opt_f64": wall["opt_f64"] / wall["fast_f64"],
        "opt_f64_vs_ref_f64": wall["ref_f64"] / wall["opt_f64"],
        "fast_f32_vs_ref_f64": wall["ref_f64"] / wall["fast_f32"],
    }
    record_result("kernels_fast_wall_clock", {"wall_s": wall, "speedups": speedups})
    record_bench(
        "kernels_fast_f64_loh3",
        wall_s=wall["fast_f64"],
        element_updates_per_s=summaries["fast_f64"]["element_updates_per_s"],
        n_elements=summaries["ref_f64"]["n_elements"],
        order=4,
        n_mechanisms=3,
        cycles=summaries["ref_f64"]["cycles"],
        ref_f64_wall_s=wall["ref_f64"],
        opt_f64_wall_s=wall["opt_f64"],
        fast_f64_wall_s=wall["fast_f64"],
        fast_f32_wall_s=wall["fast_f32"],
        fast_f64_max_rel_deviation=deviation,
        golden_peak_rel_err=golden["max_peak_rel_err"],
        golden_tolerance=golden["tolerance"],
        **{f"speedup_{k}": v for k, v in speedups.items()},
    )
    # the acceptance bar: fast f64 must at least match the opt-f64 point --
    # wall-clock asserts stay off shared CI runners, where the committed
    # BENCH json tracks the trend instead
    if not os.environ.get("CI"):
        assert speedups["fast_f64_vs_opt_f64"] >= 1.0
        assert speedups["fast_f64_vs_ref_f64"] >= 1.2
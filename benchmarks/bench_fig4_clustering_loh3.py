"""Fig. 4: LOH.3 time-step distribution and clustering for lambda = 1.00 vs 0.80.

The paper obtains theoretical speedups of 2.28x (lambda = 1.00) and 2.67x
(lambda = 0.80), a 17.5 % improvement from tuning lambda, with the bulk of
the elements moving from cluster C2 to cluster C3.  The scaled mesh
reproduces the same bimodal distribution (layer refined by 1.732x); the
benchmark regenerates the per-cluster counts, load fractions and speedups.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import derive_clustering, optimize_lambda

from conftest import record_result


def test_fig4_clustering_and_lambda_tuning(benchmark, loh3_small):
    setup = loh3_small
    dts = setup.time_steps
    neighbors = setup.mesh.neighbors

    clustering_1 = derive_clustering(dts, 3, 1.0, neighbors)
    clustering_08 = derive_clustering(dts, 3, 0.8, neighbors)
    best = benchmark.pedantic(
        lambda: optimize_lambda(dts, 3, neighbors, increment=0.01), rounds=1, iterations=1
    )

    result = {
        "n_elements": setup.mesh.n_elements,
        "dt_spread": float(dts.max() / dts.min()),
        "lambda_1.00": {
            "counts": clustering_1.counts,
            "load_fractions": clustering_1.load_fractions(),
            "speedup": clustering_1.speedup(),
        },
        "lambda_0.80": {
            "counts": clustering_08.counts,
            "load_fractions": clustering_08.load_fractions(),
            "speedup": clustering_08.speedup(),
        },
        "lambda_optimal": {
            "lambda": best.lam,
            "speedup": best.speedup(),
            "improvement_over_lambda_1": best.speedup() / clustering_1.speedup() - 1.0,
        },
        "paper": {"speedup_lambda_1": 2.28, "speedup_lambda_0.8": 2.67, "improvement": 0.175},
    }
    record_result("fig4_clustering_loh3", result)

    # shape: LTS clearly beats GTS and the optimised lambda never loses
    assert clustering_1.speedup() > 1.3
    assert best.speedup() >= clustering_1.speedup() - 1e-12
    # the distribution is bimodal: at least two clusters are populated
    assert np.count_nonzero(clustering_1.counts) >= 2

"""Fused-ensemble amortization: per-fused-run wall clock vs the fused width.

The fused axis exists to amortize everything a time step pays once per
*batch* rather than once per *run*: operator gathers, neighbour/halo
bookkeeping, kernel dispatch, and the small-GEMM launch overhead that
dominates at strong-scaling batch sizes.  This bench therefore measures the
regime the fused axis targets -- a small per-batch element count (the
per-rank partition size of a strong-scaling run), where per-update fixed
costs rival the bandwidth-bound per-element work.  One fused run advances
F genuinely distinct per-slot sources (per-slot moment scaling and wavelet
timing -- the configuration ``repro sweep --fuse`` produces) through the
same LTS schedule as F scalar runs, for F in {1, 2, 4, 8}, on the fast
backend; the folded batched GEMMs share one operator read and one dispatch
per batch across all F slots.

The committed ``BENCH_fused_amortization_loh3.json`` carries the total and
per-run walls for every width plus the per-run effective element-update
throughput (``element_updates * F / wall``).  In CI the bench runs in smoke
mode: a shortened run exercises the fused path end-to-end but neither
enforces wall-clock ratios nor rewrites the committed perf point.
"""

from __future__ import annotations

import os
from dataclasses import replace

from repro.scenarios import FusedSourceSpec, ScenarioRunner, get_scenario

from conftest import record_bench, record_result

WIDTHS = (1, 2, 4, 8)


def _spec(n_cycles: int, **overrides):
    spec = get_scenario(
        "loh3",
        extent_m=8000.0,
        characteristic_length=5000.0,
        order=4,
        n_mechanisms=3,
        jitter=0.2,
        lam=1.0,
        n_clusters=3,
        n_cycles=n_cycles,
    )
    return spec.with_overrides(kernels="fast", precision="f64", **overrides)


def _fused_spec(width: int, n_cycles: int):
    """The scalar spec widened to ``width`` genuinely distinct slots."""
    spec = _spec(n_cycles)
    if width == 1:
        return spec  # the scalar baseline: no fused axis at all
    slots = tuple(
        FusedSourceSpec(
            moment_scale=1.0 - 0.07 * f,
            time_function=dict(
                kind="ricker", params={"f0": 2.0, "t0": 0.4 + 0.05 * f}
            ),
        )
        for f in range(width)
    )
    return replace(
        spec,
        source=replace(spec.source, fused=slots),
        solver=replace(spec.solver, n_fused=width),
    )


def test_fused_amortization_wall_clock():
    smoke = bool(os.environ.get("CI"))
    n_cycles = 4 if smoke else 24
    reps = 1 if smoke else 3  # best-of-three tames single-core jitter

    wall = {}
    updates = {}
    for width in WIDTHS:
        spec = _fused_spec(width, n_cycles)
        best = None
        for _ in range(reps):
            summary = ScenarioRunner(spec).run()
            if best is None or summary["wall_s"] < best["wall_s"]:
                best = summary
        wall[width] = float(best["wall_s"])
        updates[width] = int(best["element_updates"])
        assert best["n_fused"] == (width if width > 1 else 0)

    # the schedule is source-independent: every width runs the same updates
    assert len(set(updates.values())) == 1, updates
    per_run = {width: wall[width] / width for width in WIDTHS}

    payload = {"scalar_wall_s": wall[1]}
    for width in WIDTHS:
        payload[f"fused{width}_wall_s"] = wall[width]
        payload[f"per_run_f{width}_wall_s"] = per_run[width]
        # throughput each fused run effectively sees under per-run cost
        # attribution: all F runs advance element_updates elements in wall_s
        payload[f"per_run_f{width}_element_updates_per_s"] = (
            updates[width] * width / wall[width]
        )
    payload["speedup_per_run_f4_vs_per_run_f1"] = per_run[1] / per_run[4]
    payload["speedup_per_run_f8_vs_per_run_f1"] = per_run[1] / per_run[8]
    record_result(
        "fused_amortization",
        {"wall_s": wall, "per_run_wall_s": per_run, "smoke": smoke},
    )
    if not smoke:
        # never let a CI smoke run clobber the committed perf point
        record_bench(
            "fused_amortization_loh3",
            wall_s=wall[4],
            element_updates_per_s=updates[4] * 4 / wall[4],
            kernels="fast",
            precision="f64",
            order=4,
            n_mechanisms=3,
            cycles=n_cycles,
            element_updates=updates[4],
            widths=list(WIDTHS),
            **payload,
        )

    # acceptance: per-run wall strictly decreasing from F=1 to F=4, and
    # F >= 4 beats the scalar baseline outright -- asserted off shared CI
    # runners only, where the committed BENCH json tracks the trend instead
    if not smoke:
        assert per_run[2] < per_run[1], per_run
        assert per_run[4] < per_run[2], per_run
        assert per_run[4] < wall[1], per_run
        assert per_run[8] < wall[1], per_run

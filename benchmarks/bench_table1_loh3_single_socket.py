"""Table I: LOH.3 single-socket performance of GTS / LTS(1.0) / LTS(tuned lambda),
single and fused forward simulations.

The paper reports time-to-solution speedups relative to EDGE's single-
simulation GTS configuration: LTS(1.0) 2.14x, LTS(0.8) 2.51x, fused GTS
1.80x per simulation, fused LTS(0.8) 4.51x.  Absolute throughput of the
NumPy kernels is orders of magnitude below LIBXSMM, but the *relative*
ordering and the agreement between measured and theoretical (algorithmic)
speedups is what this benchmark regenerates on a scaled LOH.3 mesh.

All configurations are driven through the scenario runner, which supplies
the wall-clock and element-update accounting.
"""

from __future__ import annotations

import pytest

from repro.scenarios import ScenarioRunner

from conftest import record_bench, record_result


N_FUSED = 4  # scaled-down ensemble width (the paper fuses 16 on AVX-512)


def _timed_run(setup, clustering, t_end, solver="lts", n_fused=0):
    """Run one configuration through the runner; returns (wall_s, updates)."""
    spec = setup.spec.with_overrides(solver=solver, n_fused=n_fused, t_end=t_end)
    runner = ScenarioRunner(spec, setup=setup, clustering=clustering)
    summary = runner.run()
    return summary["wall_s"], summary["element_updates"]


def test_table1_time_to_solution_speedups(benchmark, loh3_small):
    setup = loh3_small
    clustering_1 = setup.clustering(n_clusters=3, lam=1.0)
    clustering_opt = setup.clustering(n_clusters=3, lam=None)
    # the GTS baseline advances every element at the mesh's dt_min
    clustering_gts = setup.clustering(n_clusters=1, lam=1.0)
    t_end = 2.0 * clustering_1.cluster_time_steps[-1]

    # measured wall-clock times
    results = {}
    time_gts, updates_gts = _timed_run(setup, clustering_gts, t_end, solver="gts")
    results["gts_single"] = {"time_s": time_gts, "element_updates": updates_gts, "speedup": 1.0}

    def timed_lts():
        return _timed_run(setup, clustering_opt, t_end)

    time_lts_opt, updates_lts_opt = benchmark.pedantic(timed_lts, rounds=1, iterations=1)
    time_lts_1, updates_lts_1 = _timed_run(setup, clustering_1, t_end)
    time_gts_fused, _ = _timed_run(setup, clustering_gts, t_end, solver="gts", n_fused=N_FUSED)
    time_lts_fused, _ = _timed_run(setup, clustering_opt, t_end, n_fused=N_FUSED)

    results["lts_lambda_1.0"] = {
        "time_s": time_lts_1,
        "element_updates": updates_lts_1,
        "speedup": time_gts / time_lts_1,
        "theoretical_speedup": clustering_1.speedup(),
    }
    results["lts_lambda_opt"] = {
        "lambda": clustering_opt.lam,
        "time_s": time_lts_opt,
        "element_updates": updates_lts_opt,
        "speedup": time_gts / time_lts_opt,
        "theoretical_speedup": clustering_opt.speedup(),
    }
    results["gts_fused_per_simulation"] = {
        "time_s": time_gts_fused,
        "speedup": time_gts / (time_gts_fused / N_FUSED),
        "n_fused": N_FUSED,
    }
    results["lts_opt_fused_per_simulation"] = {
        "time_s": time_lts_fused,
        "speedup": time_gts / (time_lts_fused / N_FUSED),
        "n_fused": N_FUSED,
    }
    record_result("table1_loh3_single_socket", results)
    record_bench(
        "table1_lts_opt",
        wall_s=time_lts_opt,
        element_updates_per_s=updates_lts_opt / time_lts_opt if time_lts_opt else 0.0,
        lam=clustering_opt.lam,
        speedup_vs_gts=time_gts / time_lts_opt,
    )

    # shape of Table I: LTS beats GTS, tuned lambda beats lambda = 1, fusing
    # increases the per-simulation throughput further
    assert results["lts_lambda_1.0"]["speedup"] > 1.2
    # wall-clock gains of the tuned lambda and of fusing are muted at this tiny
    # mesh size (per-cluster Python overhead); the algorithmic gain is asserted
    # below and the measured wall-clock numbers are recorded in the JSON
    assert results["lts_lambda_opt"]["theoretical_speedup"] >= results["lts_lambda_1.0"]["theoretical_speedup"] - 1e-12
    assert results["lts_lambda_opt"]["speedup"] >= 0.6 * results["lts_lambda_1.0"]["speedup"]
    assert results["lts_opt_fused_per_simulation"]["speedup"] > 0.5 * results["lts_lambda_opt"]["speedup"]
    # measured algorithmic efficiency close to the theoretical model (paper: ~94-95 %)
    measured_updates_ratio = updates_gts / updates_lts_1
    assert measured_updates_ratio == pytest.approx(clustering_1.speedup(), rel=0.15)

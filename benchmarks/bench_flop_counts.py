"""Sec. IV-A / VII-B: operation counts and sparsity exploitation.

The paper derives 529,110 flops per element update for single forward
simulations (block-sparsity only) and 212,688 per simulation when fusing and
exploiting all sparsity -- 59.8 % of the single-simulation operations are
zero-operations.  This benchmark reports the analogous counts of this
implementation's operator set and the measured fused-mode throughput gain.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.gts_solver import GlobalTimeSteppingSolver
from repro.kernels.flops import count_flops_per_element_update, sparsity_report

from conftest import record_result


def test_flop_counts_and_sparsity(benchmark, loh3_small):
    disc = loh3_small.disc
    dense = benchmark.pedantic(
        lambda: count_flops_per_element_update(disc, sparse=False), rounds=1, iterations=1
    )
    sparse = count_flops_per_element_update(disc, sparse=True)
    report = sparsity_report(disc)

    # measured per-simulation throughput gain of the fused mode
    t_end = 5 * float(disc.time_steps.min())
    start = time.perf_counter()
    GlobalTimeSteppingSolver(disc).run(t_end)
    single = time.perf_counter() - start
    n_fused = 4
    start = time.perf_counter()
    GlobalTimeSteppingSolver(disc, n_fused=n_fused).run(t_end)
    fused = time.perf_counter() - start

    result = {
        "order": disc.order,
        "n_mechanisms": disc.n_mechanisms,
        "flops_per_element_update_dense": dense.total,
        "flops_per_element_update_sparse": sparse.total,
        "zero_operation_fraction": report["zero_operation_fraction"],
        "kernel_breakdown_dense": {
            "time": dense.time_kernel,
            "volume": dense.volume_kernel,
            "surface_local": dense.surface_local,
            "surface_neighbor": dense.surface_neighbor,
        },
        "fused_per_simulation_speedup_measured": single / (fused / n_fused),
        "paper": {
            "flops_dense": 529_110,
            "flops_sparse": 212_688,
            "zero_fraction": 0.598,
            "fused_gts_speedup": 1.80,
        },
    }
    record_result("flop_counts_sparsity", result)

    # shape: same order of magnitude as the paper's O=5 counts (ours is O=4)
    assert 1e5 < dense.total < 2e6
    assert 0.2 < report["zero_operation_fraction"] < 0.9
    # see bench_ablations: NumPy fusing does not reproduce the 1.8x register-level gain
    assert result["fused_per_simulation_speedup_measured"] > 0.4

"""Distributed execution engine: throughput and halo-exchange overhead.

Runs the same scaled LOH.3 configuration through the single-rank runner and
the 2- and 4-rank distributed engine.  The engine must reproduce the
single-rank DOFs bit for bit (asserted), and the recorded wall time /
element-update throughput / communication bytes feed the cross-PR perf
trajectory (``BENCH_*.json``).

The backend comparison measures the tentpole claim of the overlap work:
the ``process`` backend (one worker per rank, boundary-first prediction,
sends in flight during interior work) must turn the serial engine's
modelled-only scaling into *measured* wall-clock speedup on the same run.
"""

from __future__ import annotations

import numpy as np

from repro.scenarios import ScenarioRunner, get_scenario, make_runner

from conftest import record_bench, record_result


def _spec(n_ranks: int = 1, backend: str = "serial", comm: str | None = None):
    spec = get_scenario(
        "loh3",
        extent_m=6000.0,
        characteristic_length=1500.0,
        order=3,
        n_mechanisms=2,
        lam=1.0,
        n_clusters=3,
        n_cycles=2,
    )
    if n_ranks > 1:
        spec = spec.with_overrides(n_ranks=n_ranks, backend=backend, comm=comm)
    return spec


def test_distributed_throughput_and_bit_identity(benchmark):
    single = ScenarioRunner(_spec())
    single_summary = single.run()

    def run_two_ranks():
        runner = make_runner(_spec(2))
        return runner, runner.run()

    two, two_summary = benchmark.pedantic(run_two_ranks, rounds=1, iterations=1)
    four = make_runner(_spec(4))
    four_summary = four.run()

    result = {
        "n_elements": single_summary["n_elements"],
        "single": {
            "wall_s": single_summary["wall_s"],
            "element_updates_per_s": single_summary["element_updates_per_s"],
        },
        "ranks2": {
            "wall_s": two_summary["wall_s"],
            "element_updates_per_s": two_summary["element_updates_per_s"],
            "comm_bytes": two_summary["comm"]["n_bytes"],
            "comm_messages": two_summary["comm"]["n_messages"],
        },
        "ranks4": {
            "wall_s": four_summary["wall_s"],
            "element_updates_per_s": four_summary["element_updates_per_s"],
            "comm_bytes": four_summary["comm"]["n_bytes"],
            "comm_messages": four_summary["comm"]["n_messages"],
        },
    }
    record_result("distributed_engine", result)
    record_bench(
        "distributed_2rank_loh3",
        wall_s=two_summary["wall_s"],
        element_updates_per_s=two_summary["element_updates_per_s"],
        comm_bytes=two_summary["comm"]["n_bytes"],
    )
    record_bench(
        "distributed_4rank_loh3",
        wall_s=four_summary["wall_s"],
        element_updates_per_s=four_summary["element_updates_per_s"],
        comm_bytes=four_summary["comm"]["n_bytes"],
    )

    np.testing.assert_array_equal(two.solver.dofs, single.solver.dofs)
    np.testing.assert_array_equal(four.solver.dofs, single.solver.dofs)
    assert two_summary["element_updates"] == single_summary["element_updates"]
    assert four_summary["element_updates"] == single_summary["element_updates"]
    # more ranks cut more faces: the measured traffic must grow
    assert four_summary["comm"]["n_bytes"] > two_summary["comm"]["n_bytes"]


def test_backend_overlap_wall_clock():
    """Serial vs process backend on the same >=2-rank LOH.3 run (Fig. 10's
    strong-scaling story, measured instead of modelled).

    The recorded host ``cpu_count`` is the context for the speedup number:
    with fewer cores than ranks the workers time-slice and the point is
    IPC-overhead-bound (speedup <= 1 on a single-core CI box); with
    ``cpu_count >= n_ranks`` the overlapped exchange turns into real
    wall-clock speedup.
    """
    import multiprocessing

    cpu_count = multiprocessing.cpu_count()
    results = {"cpu_count": cpu_count}
    for n_ranks in (2, 4):
        serial = make_runner(_spec(n_ranks, "serial"))
        serial_summary = serial.run()
        process = make_runner(_spec(n_ranks, "process"))
        process_summary = process.run()
        np.testing.assert_array_equal(process.solver.dofs, serial.solver.dofs)
        assert process_summary["comm"]["per_pair"] == serial_summary["comm"]["per_pair"]
        results[n_ranks] = {
            "serial_wall_s": serial_summary["wall_s"],
            "process_wall_s": process_summary["wall_s"],
            "speedup_process_vs_serial": serial_summary["wall_s"]
            / process_summary["wall_s"],
            "element_updates_per_s_serial": serial_summary["element_updates_per_s"],
            "element_updates_per_s_process": process_summary["element_updates_per_s"],
            "comm_bytes": process_summary["comm"]["n_bytes"],
        }
    record_result("distributed_backend_overlap", results)
    record_bench(
        "distributed_backend_overlap_2rank_loh3",
        wall_s=results[2]["process_wall_s"],
        element_updates_per_s=results[2]["element_updates_per_s_process"],
        comm_bytes=results[2]["comm_bytes"],
        serial_wall_s=results[2]["serial_wall_s"],
        speedup_process_vs_serial=results[2]["speedup_process_vs_serial"],
        cpu_count=cpu_count,
    )
    record_bench(
        "distributed_backend_overlap_4rank_loh3",
        wall_s=results[4]["process_wall_s"],
        element_updates_per_s=results[4]["element_updates_per_s_process"],
        comm_bytes=results[4]["comm_bytes"],
        serial_wall_s=results[4]["serial_wall_s"],
        speedup_process_vs_serial=results[4]["speedup_process_vs_serial"],
        cpu_count=cpu_count,
    )


def test_shm_transport_overlap_wall_clock():
    """Queue vs shared-memory halo transport on the same 2-rank LOH.3 run.

    Both transports move byte-identical logical traffic (asserted against
    the exchange model); the shm transport replaces the per-batch pickle +
    queue-feeder hop with an in-place ring-buffer write, so its wall clock
    isolates the pure IPC tax of the queue path.  As with the overlap
    points, ``cpu_count`` is the context: on a single-core box both
    transports time-slice and the delta is pure transport overhead.
    """
    import multiprocessing

    cpu_count = multiprocessing.cpu_count()
    serial = make_runner(_spec(2, "serial"))
    serial_summary = serial.run()
    summaries = {}
    for comm in ("queue", "shm"):
        runner = make_runner(_spec(2, "process", comm))
        summary = runner.run()
        np.testing.assert_array_equal(runner.solver.dofs, serial.solver.dofs)
        assert summary["comm"]["per_pair"] == serial_summary["comm"]["per_pair"]
        assert (
            summary["comm"]["measured_bytes_per_cycle"]
            == summary["comm"]["model"]["total_bytes"]
        )
        summaries[comm] = summary
    results = {
        "cpu_count": cpu_count,
        "serial_wall_s": serial_summary["wall_s"],
        "queue_wall_s": summaries["queue"]["wall_s"],
        "shm_wall_s": summaries["shm"]["wall_s"],
        "speedup_shm_vs_queue": summaries["queue"]["wall_s"]
        / summaries["shm"]["wall_s"],
        "comm_bytes": summaries["shm"]["comm"]["n_bytes"],
    }
    record_result("distributed_shm_overlap", results)
    record_bench(
        "distributed_shm_overlap_2rank_loh3",
        wall_s=summaries["shm"]["wall_s"],
        element_updates_per_s=summaries["shm"]["element_updates_per_s"],
        comm_bytes=results["comm_bytes"],
        serial_wall_s=results["serial_wall_s"],
        queue_wall_s=results["queue_wall_s"],
        shm_wall_s=results["shm_wall_s"],
        speedup_shm_vs_queue=results["speedup_shm_vs_queue"],
        cpu_count=cpu_count,
    )

"""Distributed execution engine: throughput and halo-exchange overhead.

Runs the same scaled LOH.3 configuration through the single-rank runner and
the 2- and 4-rank distributed engine.  The engine must reproduce the
single-rank DOFs bit for bit (asserted), and the recorded wall time /
element-update throughput / communication bytes feed the cross-PR perf
trajectory (``BENCH_*.json``).
"""

from __future__ import annotations

import numpy as np

from repro.scenarios import ScenarioRunner, get_scenario, make_runner

from conftest import record_bench, record_result


def _spec(n_ranks: int = 1):
    spec = get_scenario(
        "loh3",
        extent_m=6000.0,
        characteristic_length=1500.0,
        order=3,
        n_mechanisms=2,
        lam=1.0,
        n_clusters=3,
        n_cycles=2,
    )
    return spec.with_overrides(n_ranks=n_ranks) if n_ranks > 1 else spec


def test_distributed_throughput_and_bit_identity(benchmark):
    single = ScenarioRunner(_spec())
    single_summary = single.run()

    def run_two_ranks():
        runner = make_runner(_spec(2))
        return runner, runner.run()

    two, two_summary = benchmark.pedantic(run_two_ranks, rounds=1, iterations=1)
    four = make_runner(_spec(4))
    four_summary = four.run()

    result = {
        "n_elements": single_summary["n_elements"],
        "single": {
            "wall_s": single_summary["wall_s"],
            "element_updates_per_s": single_summary["element_updates_per_s"],
        },
        "ranks2": {
            "wall_s": two_summary["wall_s"],
            "element_updates_per_s": two_summary["element_updates_per_s"],
            "comm_bytes": two_summary["comm"]["n_bytes"],
            "comm_messages": two_summary["comm"]["n_messages"],
        },
        "ranks4": {
            "wall_s": four_summary["wall_s"],
            "element_updates_per_s": four_summary["element_updates_per_s"],
            "comm_bytes": four_summary["comm"]["n_bytes"],
            "comm_messages": four_summary["comm"]["n_messages"],
        },
    }
    record_result("distributed_engine", result)
    record_bench(
        "distributed_2rank_loh3",
        wall_s=two_summary["wall_s"],
        element_updates_per_s=two_summary["element_updates_per_s"],
        comm_bytes=two_summary["comm"]["n_bytes"],
    )
    record_bench(
        "distributed_4rank_loh3",
        wall_s=four_summary["wall_s"],
        element_updates_per_s=four_summary["element_updates_per_s"],
        comm_bytes=four_summary["comm"]["n_bytes"],
    )

    np.testing.assert_array_equal(two.solver.dofs, single.solver.dofs)
    np.testing.assert_array_equal(four.solver.dofs, single.solver.dofs)
    assert two_summary["element_updates"] == single_summary["element_updates"]
    assert four_summary["element_updates"] == single_summary["element_updates"]
    # more ranks cut more faces: the measured traffic must grow
    assert four_summary["comm"]["n_bytes"] > two_summary["comm"]["n_bytes"]

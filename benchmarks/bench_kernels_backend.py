"""Kernel-execution backends: per-kernel microbench + end-to-end wall clock.

Measures the tentpole claim of the kernel-backend work on a LOH.3-style
workload (order 4, three relaxation mechanisms, clustered LTS):

* per-kernel: reference vs optimized execution of the CK time kernel, the
  volume kernel and the surface kernels on one cluster-sized batch,
* end-to-end: the same scenario run under every (kernels, precision)
  combination.  The optimized f64 run must be **bit-identical** to the
  reference (asserted); the optimized backend in its production
  configuration -- f32 with cached contraction plans, the precision EDGE's
  tuned kernels run at -- must beat the f64 reference by >= 1.3x (asserted).

The committed ``BENCH_kernels_backend_loh3.json`` carries all four wall
clocks plus the derived speedups and the host stamp, so the perf trajectory
records both the bit-exact f64 gain and the production-mode gain.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.kernels.backend import OptimizedBackend, ReferenceBackend
from repro.kernels.discretization import N_ELASTIC
from repro.scenarios import ScenarioRunner, build_setup, get_scenario

from conftest import record_bench, record_result


def _spec(**overrides):
    spec = get_scenario(
        "loh3",
        extent_m=8000.0,
        characteristic_length=2000.0,
        order=4,
        n_mechanisms=3,
        jitter=0.2,
        lam=1.0,
        n_clusters=3,
        n_cycles=3,
    )
    return spec.with_overrides(**overrides) if overrides else spec


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_kernel_microbench():
    """Reference vs optimized per-kernel timings on one element batch."""
    setup = build_setup(_spec())
    disc = setup.disc
    rng = np.random.default_rng(0)
    dofs = rng.standard_normal((disc.n_elements, disc.n_vars, disc.n_basis))
    elements = np.arange(disc.n_elements)
    dt = float(disc.time_steps.min())

    ref = ReferenceBackend()
    opt = OptimizedBackend()
    ws = opt.make_workspace()

    derivs = ref.compute_time_derivatives(disc, dofs, elements)
    ti = ref.time_integrate(derivs, 0.0, dt)
    traces = ref.project_local_traces(disc, ti[:, :N_ELASTIC], elements)
    neighbor_te = ti[:, :N_ELASTIC][np.maximum(disc.mesh.neighbors, 0)]
    coeffs = ref.neighbor_face_coefficients(disc, neighbor_te, traces, elements)

    cases = {
        "time_derivatives": (
            lambda: ref.compute_time_derivatives(disc, dofs, elements),
            lambda: opt.compute_time_derivatives(disc, dofs, elements, ws=ws),
        ),
        "volume": (
            lambda: ref.volume_kernel(disc, ti, elements),
            lambda: opt.volume_kernel(disc, ti, elements, ws=ws),
        ),
        "surface_local": (
            lambda: ref.surface_kernel_local(disc, ti, elements, traces),
            lambda: opt.surface_kernel_local(disc, ti, elements, traces, ws=ws),
        ),
        "project_traces": (
            lambda: ref.project_local_traces(disc, ti[:, :N_ELASTIC], elements),
            lambda: opt.project_local_traces(disc, ti[:, :N_ELASTIC], elements, ws=ws),
        ),
        "surface_neighbor": (
            lambda: ref.surface_kernel_neighbor(disc, coeffs, elements),
            lambda: opt.surface_kernel_neighbor(disc, coeffs, elements, ws=ws),
        ),
    }
    results = {"n_elements": int(disc.n_elements), "order": disc.order}
    for name, (ref_fn, opt_fn) in cases.items():
        # parity first (also warms the operator caches), then timing
        assert np.array_equal(np.asarray(opt_fn()), np.asarray(ref_fn())), name
        t_ref = _best_of(ref_fn)
        t_opt = _best_of(opt_fn)
        results[name] = {
            "ref_ms": 1e3 * t_ref,
            "opt_ms": 1e3 * t_opt,
            "speedup": t_ref / t_opt,
        }
    record_result("kernels_backend_microbench", results)


def test_backend_wall_clock_and_bit_identity():
    """End-to-end LOH.3-style wall clock across (kernels, precision)."""
    runs = {}
    summaries = {}
    for kernels in ("ref", "opt"):
        for precision in ("f64", "f32"):
            key = f"{kernels}_{precision}"
            best = None
            for _ in range(2):  # best-of-two tames single-core CI jitter
                runner = ScenarioRunner(_spec(kernels=kernels, precision=precision))
                summary = runner.run()
                if best is None or summary["wall_s"] < best[1]["wall_s"]:
                    best = (runner, summary)
            runs[key], summaries[key] = best

    # the optimized f64 pipeline is bit-identical to the reference
    np.testing.assert_array_equal(
        runs["opt_f64"].solver.dofs, runs["ref_f64"].solver.dofs
    )
    for receiver in runs["ref_f64"].receivers.receivers:
        ts, vs = receiver.seismogram()
        to, vo = runs["opt_f64"].receivers[receiver.name].seismogram()
        assert np.array_equal(ts, to) and np.array_equal(vs, vo)

    wall = {key: summaries[key]["wall_s"] for key in summaries}
    speedups = {
        # bit-exact mode: same arithmetic, fewer allocations/contractions
        "opt_f64_vs_ref_f64": wall["ref_f64"] / wall["opt_f64"],
        # production mode (EDGE runs single precision): plans + BLAS dispatch
        "opt_f32_vs_ref_f64": wall["ref_f64"] / wall["opt_f32"],
        "opt_f32_vs_ref_f32": wall["ref_f32"] / wall["opt_f32"],
        "f32_vs_f64_opt": wall["opt_f64"] / wall["opt_f32"],
    }
    record_result("kernels_backend_wall_clock", {"wall_s": wall, "speedups": speedups})
    record_bench(
        "kernels_backend_loh3",
        wall_s=wall["opt_f32"],
        element_updates_per_s=summaries["opt_f32"]["element_updates_per_s"],
        n_elements=summaries["ref_f64"]["n_elements"],
        order=4,
        n_mechanisms=3,
        cycles=summaries["ref_f64"]["cycles"],
        ref_f64_wall_s=wall["ref_f64"],
        opt_f64_wall_s=wall["opt_f64"],
        ref_f32_wall_s=wall["ref_f32"],
        opt_f32_wall_s=wall["opt_f32"],
        bit_identical_opt_f64=True,
        **{f"speedup_{k}": v for k, v in speedups.items()},
    )
    # the production configuration must clear the tentpole bar on a quiet
    # dev box; on shared CI runners the smoke value is the parity checks, so
    # the wall-clock threshold does not gate CI (the committed BENCH json
    # tracks the trend instead).  The f64 pipeline's ~1.15-1.25x gain is
    # recorded but never asserted: it is pinned to the reference's bit-exact
    # contraction order and has too little margin for a timing assert.
    if not os.environ.get("CI"):
        assert speedups["opt_f32_vs_ref_f64"] >= 1.3

"""Fig. 2: verification of the full feature set against a reference solution.

The paper compares EDGE's High-F seismograms (LTS + anelasticity + velocity-
aware mesh) against the independent finite-difference solver EMO3D.  No
second solver is available offline, so the verification compares the full
LTS + anelastic configuration against the GTS reference of the *same*
discretisation on a La-Habra-like basin setting -- exercising exactly the
code paths the paper's verification exercises (clustered LTS, buffers,
attenuation, free surface, topography) -- and reports the seismogram misfits
for the three stations.
"""

from __future__ import annotations

import numpy as np

from repro.core.gts_solver import GlobalTimeSteppingSolver
from repro.core.lts_solver import ClusteredLtsSolver
from repro.source.misfit import seismogram_misfit
from repro.source.receivers import ReceiverSet, resample_seismogram
from repro.workloads.la_habra import la_habra_setup

from conftest import record_result


def test_fig2_verification_seismograms(benchmark):
    setup = la_habra_setup(
        extent_m=12000.0, depth_m=8000.0, max_frequency=0.35, order=3, with_topography=True
    )
    # replace the long-period kinematic source by a faster pulse placed closer to
    # the surface so the stations record within an affordable time window
    from repro.source.moment_tensor import MomentTensorSource
    from repro.source.time_functions import RickerWavelet

    moment = np.zeros((3, 3))
    moment[0, 2] = moment[2, 0] = 7.1e16
    setup.source = MomentTensorSource(
        location=np.array([6000.0, 6000.0, -2500.0]),
        moment_tensor=moment,
        time_function=RickerWavelet(f0=1.0, t0=1.0),
    )
    clustering = setup.clustering(n_clusters=3, lam=None)
    t_end = max(2.2, 2.0 * clustering.cluster_time_steps[-1])

    receivers_ref = ReceiverSet(setup.disc, setup.receiver_locations)
    reference = GlobalTimeSteppingSolver(
        setup.disc,
        dt=clustering.cluster_time_steps[0],
        sources=[setup.source],
        receivers=receivers_ref,
    )
    reference.run(t_end)

    receivers_lts = ReceiverSet(setup.disc, setup.receiver_locations)
    solver = ClusteredLtsSolver(
        setup.disc, clustering, sources=[setup.source], receivers=receivers_lts
    )
    benchmark.pedantic(lambda: solver.run(t_end), rounds=1, iterations=1)

    misfits = {}
    for name in setup.receiver_locations:
        t_r, v_r = receivers_ref[name].seismogram()
        t_s, v_s = receivers_lts[name].seismogram()
        if len(t_r) < 2 or len(t_s) < 2 or np.sum(v_r**2) == 0:
            misfits[name] = None
            continue
        common = np.linspace(0.0, min(t_r[-1], t_s[-1]), 200)
        misfits[name] = seismogram_misfit(
            resample_seismogram(t_s, v_s, common), resample_seismogram(t_r, v_r, common)
        )

    result = {
        "n_elements": setup.mesh.n_elements,
        "n_clusters": clustering.n_clusters,
        "lambda": clustering.lam,
        "station_misfits_E": misfits,
        "paper": "EDGE vs EMO3D seismograms visually agree after 5 Hz low-pass (Fig. 2)",
    }
    record_result("fig2_verification", result)

    measured = [m for m in misfits.values() if m is not None]
    assert measured, "at least one station must record a usable signal"
    assert max(measured) < 0.1, f"station misfits too large: {misfits}"

"""Shared fixtures and result recording for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md for the per-experiment index).  Results are written as JSON
files into ``benchmarks/results/`` so that EXPERIMENTS.md can be updated
from a single run of ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.scenarios import build_setup
from repro.scenarios.registry import loh3_scenario

RESULTS_DIR = Path(__file__).parent / "results"


def _convert(value):
    """Recursively turn numpy scalars/arrays into JSON-native values."""
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _convert(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_convert(v) for v in value]
    return value


def record_result(name: str, payload: dict) -> None:
    """Persist a benchmark's table/figure data as JSON (and echo it)."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(_convert(payload), indent=2))
    print(f"\n[{name}] " + json.dumps(_convert(payload), indent=2))


def host_metadata() -> dict:
    """Host facts stamped into every committed perf point.

    Wall-clock numbers are only comparable on similar hosts; the stamp (cpu
    count, numpy/python versions, platform) lets the perf trajectory across
    PRs separate code changes from host changes.
    """
    return {
        "cpu_count": os.cpu_count() or 1,
        "numpy": np.__version__,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }


def record_bench(
    name: str,
    *,
    wall_s: float | None = None,
    element_updates_per_s: float | None = None,
    comm_bytes: float | None = None,
    **extra,
) -> None:
    """Persist one standardised perf point as ``BENCH_<name>.json``.

    Unlike the (gitignored) figure payloads these small files are committed:
    they carry the three headline quantities -- wall time, element-update
    throughput, communication bytes -- plus the host metadata stamp, and
    form the perf trajectory that is tracked across PRs.  Extra keyword
    arguments (e.g. ``kernels=...``, ``precision=...``, per-variant wall
    clocks) are stored verbatim.
    """
    payload = {"bench": name}
    if wall_s is not None:
        payload["wall_s"] = float(wall_s)
    if element_updates_per_s is not None:
        payload["element_updates_per_s"] = float(element_updates_per_s)
    if comm_bytes is not None:
        payload["comm_bytes"] = float(comm_bytes)
    payload.update(extra)
    payload["host"] = host_metadata()
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(_convert(payload), indent=2) + "\n")


@pytest.fixture(scope="session")
def loh3_small():
    """A small LOH.3 scenario setup shared by the performance benchmarks."""
    return build_setup(
        loh3_scenario(
            extent_m=8000.0, characteristic_length=2000.0, order=4, n_mechanisms=3, jitter=0.2
        )
    )


@pytest.fixture(scope="session")
def loh3_small_elastic():
    """The purely elastic counterpart (for the cost-of-anelasticity comparison)."""
    return build_setup(
        loh3_scenario(
            extent_m=8000.0,
            characteristic_length=2000.0,
            order=4,
            anelastic=False,
            jitter=0.2,
        )
    )

"""Sec. V / V-C: communicated data volumes of the time stepping schemes.

Regenerates the paper's comparison: the legacy derivative exchange needs
1,575 values per element for the anelastic equations at O = 5, the
next-generation buffer 315, and the face-local compressed MPI message 135
values per face; plus the per-cycle halo traffic of a partitioned mesh under
both representations.  A distributed 2-rank run then validates the model
against the *measured* traffic of the execution engine.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import derive_clustering
from repro.core.legacy_lts import communication_volumes
from repro.mesh.generation import box_mesh
from repro.parallel.exchange import build_halo, exchange_volumes_per_cycle
from repro.parallel.partition import partition_dual_graph
from repro.scenarios import get_scenario, make_runner

from conftest import record_bench, record_result


def test_comm_volume_per_scheme(benchmark):
    volumes = benchmark.pedantic(
        lambda: communication_volumes(order=5, n_mechanisms=3), rounds=1, iterations=1
    )

    # halo traffic of a partitioned mesh, buffer vs face-local representation
    coords = np.linspace(0.0, 1.0, 11)
    mesh = box_mesh(coords, coords, coords, free_surface_top=False)
    rng = np.random.default_rng(0)
    dts = rng.uniform(1.0, 8.0, mesh.n_elements)
    clustering = derive_clustering(dts, 3, 1.0, mesh.neighbors)
    partitions = partition_dual_graph(mesh.neighbors, np.ones(mesh.n_elements), 8).partitions
    halo = build_halo(mesh.neighbors, partitions)
    full = exchange_volumes_per_cycle(halo, clustering.cluster_ids, 3, order=5, face_local=False)
    compressed = exchange_volumes_per_cycle(
        halo, clustering.cluster_ids, 3, order=5, face_local=True
    )

    result = {
        "per_element_values": {
            "derivative_scheme_elastic_zero_blocks": volumes.derivative_scheme_elastic,
            "derivative_scheme_anelastic": volumes.derivative_scheme_anelastic,
            "next_generation_buffer": volumes.buffer_scheme,
            "face_local_mpi_per_face": volumes.face_local_mpi,
        },
        "halo_traffic_bytes_per_cycle": {
            "full_buffers": full["total_bytes"],
            "face_local": compressed["total_bytes"],
            "reduction": full["total_bytes"] / compressed["total_bytes"],
            "n_halo_faces": full["n_halo_faces"],
        },
        "paper": {"derivatives_O5": 1575, "buffer_O5": 315, "face_local_O5": 135},
    }
    record_result("comm_volume", result)

    assert volumes.derivative_scheme_anelastic == 1575
    assert volumes.buffer_scheme == 315
    assert volumes.face_local_mpi == 135
    assert result["halo_traffic_bytes_per_cycle"]["reduction"] > 2.0


def test_measured_traffic_matches_model():
    """The machine model's per-cycle traffic, validated against a real
    distributed run instead of restated: measured bytes/messages of the
    2-rank engine must equal the model's prediction exactly."""
    spec = get_scenario(
        "loh3",
        extent_m=4000.0,
        characteristic_length=2000.0,
        order=2,
        n_mechanisms=1,
        lam=1.0,
        n_clusters=2,
        n_cycles=2,
    ).with_overrides(n_ranks=2)
    runner = make_runner(spec)
    summary = runner.run()
    comm = summary["comm"]

    record_bench(
        "comm_volume_measured_2rank",
        wall_s=summary["wall_s"],
        element_updates_per_s=summary["element_updates_per_s"],
        comm_bytes=comm["n_bytes"],
        messages=comm["n_messages"],
        model_bytes_per_cycle=comm["model"]["total_bytes"],
    )

    assert comm["measured_bytes_per_cycle"] == comm["model"]["total_bytes"]
    assert comm["measured_messages_per_cycle"] == comm["model"]["n_messages"]
    for pair, entry in comm["per_pair"].items():
        assert entry["bytes"] / summary["cycles"] == comm["model"]["per_pair"][pair]

"""Fig. 7: element-count imbalance of the weighted partitioning.

The partitioner balances *weighted* loads (update frequency per element), so
partitions rich in large-time-step elements hold more elements in total: the
paper reports a 2.2x spread for 48 partitions and 4.12x for 2048 partitions
of the La Habra mesh.  The benchmark partitions a synthetic La-Habra-like
dual graph (paper-calibrated cluster fractions on a box mesh) and reports
the same quantities at feasible sizes.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import derive_clustering
from repro.mesh.generation import box_mesh
from repro.parallel.partition import element_weights, partition_dual_graph
from repro.workloads.la_habra import PAPER_LAMBDA, la_habra_time_step_distribution

from conftest import record_result


def test_fig7_partition_element_count_spread(benchmark):
    # a box mesh provides the dual graph; the time steps follow the La Habra density
    n_cells = 14
    coords = np.linspace(0.0, 1.0, n_cells + 1)
    mesh = box_mesh(coords, coords, coords, free_surface_top=False)
    dts = la_habra_time_step_distribution(n_elements=mesh.n_elements, seed=2)
    # the production mesh's small time steps are spatially clustered (the basin);
    # emulate that by assigning the smallest steps to the elements closest to a
    # "basin centre" so the weighted partitioning shows the Fig. 7 effect
    center = np.array([0.5, 0.5, 1.0])
    distance = np.linalg.norm(mesh.centroids - center, axis=1)
    dts = np.sort(dts)[np.argsort(np.argsort(distance))]
    clustering = derive_clustering(dts, 5, PAPER_LAMBDA, mesh.neighbors)
    weights = element_weights(clustering.cluster_ids, clustering.n_clusters)

    results = {"n_elements": mesh.n_elements, "partitionings": {}}
    partition_counts = [12, 48]

    def partition_all():
        return {n: partition_dual_graph(mesh.neighbors, weights, n) for n in partition_counts}

    partitions = benchmark.pedantic(partition_all, rounds=1, iterations=1)
    for n_parts, result in partitions.items():
        results["partitionings"][str(n_parts)] = {
            "element_count_min": int(result.element_counts.min()),
            "element_count_max": int(result.element_counts.max()),
            "element_count_spread": result.element_count_spread(),
            "weighted_load_imbalance": result.load_imbalance(),
        }
    results["paper"] = {"spread_48_partitions": 2.2, "spread_2048_partitions": 4.12}
    record_result("fig7_partition_imbalance", results)

    for stats in results["partitionings"].values():
        # weighted loads stay balanced ...
        assert stats["weighted_load_imbalance"] < 1.3
        # ... which makes the raw element counts unbalanced
        assert stats["element_count_spread"] > 1.05
    # more partitions -> larger spread (the paper's 2.2x -> 4.12x trend)
    assert results["partitionings"]["48"]["element_count_spread"] > 1.3
    assert (
        results["partitionings"]["48"]["element_count_spread"]
        > results["partitionings"]["12"]["element_count_spread"]
    )

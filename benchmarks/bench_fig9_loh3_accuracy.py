"""Fig. 9 (and the Sec. VII-B text numbers): LOH.3 accuracy and LTS efficiency.

Regenerated content:

* GTS and LTS seismograms at the "receiver 9" analogue and their misfit E
  (the paper finds nearly identical solutions, misfits ~1e-3 .. 1e-2),
* the LTS speedup over GTS (paper: 6.0x measured vs 6.3x theoretical, i.e.
  ~95 % of the algorithmic efficiency is realised), and
* the "cost of anelasticity" (paper: ~1.8x for three relaxation mechanisms).

Both time-stepping configurations run through the scenario runner on the
same spec-built setup, differing only in the solver kind.
"""

from __future__ import annotations

import numpy as np

from repro.scenarios import ScenarioRunner, build_setup, measure_update_cost
from repro.scenarios.registry import loh3_scenario
from repro.source.misfit import seismogram_misfit
from repro.source.receivers import resample_seismogram

from conftest import record_result


def test_fig9_lts_accuracy_and_anelastic_cost(benchmark, loh3_small_elastic):
    # a faster source so that the direct wave reaches the station analogue
    # within an affordable simulated time window
    spec = loh3_scenario(
        extent_m=8000.0, characteristic_length=2000.0, order=4, n_mechanisms=3,
        jitter=0.2, source_frequency=4.0,
    )
    setup = build_setup(spec)
    clustering = setup.clustering(n_clusters=3, lam=None)
    # the epicentre station sits ~2 km above the source: direct P arrives ~0.65 s
    t_end = max(0.9, 3.0 * clustering.cluster_time_steps[-1])

    gts = ScenarioRunner(
        spec.with_overrides(solver="gts", t_end=t_end), setup=setup, clustering=clustering
    )
    summary_gts = gts.run()

    lts = ScenarioRunner(spec.with_overrides(t_end=t_end), setup=setup, clustering=clustering)

    def run_lts():
        lts.run()

    benchmark.pedantic(run_lts, rounds=1, iterations=1)

    # misfit E of the LTS vs the GTS solution at the receiver analogue
    t_g, v_g = gts.receivers["epicentre"].seismogram()
    t_l, v_l = lts.receivers["epicentre"].seismogram()
    common = np.linspace(0.0, min(t_g[-1], t_l[-1]), 200)
    ref = resample_seismogram(t_g, v_g, common)
    sol = resample_seismogram(t_l, v_l, common)
    misfit = seismogram_misfit(sol, ref) if np.sum(ref**2) > 0 else 0.0

    assert np.max(np.abs(ref)) > 0.0, "the source signal must reach the station"

    # cost of anelasticity: per-element-update wall time, viscoelastic vs elastic
    per_update_elastic = measure_update_cost(loh3_small_elastic)
    per_update_visco = measure_update_cost(setup)
    anelastic_cost = per_update_visco / per_update_elastic

    result = {
        "n_elements": setup.mesh.n_elements,
        "misfit_E_lts_vs_gts": misfit,
        "update_ratio_gts_over_lts": summary_gts["element_updates"]
        / lts.solver.n_element_updates,
        "theoretical_speedup": clustering.speedup(),
        # the GTS reference here advances at lambda * dt_min (the same base step
        # as cluster 0), so the expected update ratio is speedup / lambda
        "fraction_of_theoretical": (
            summary_gts["element_updates"] / lts.solver.n_element_updates
        )
        / (clustering.speedup() / clustering.lam),
        "anelastic_cost_factor": anelastic_cost,
        "paper": {
            "lts_speedup": 6.0,
            "theoretical": 6.3,
            "fraction": 0.95,
            "anelastic_cost": 1.8,
            "note": "absolute speedups depend on the mesh's dt spread; the scaled mesh has a smaller spread",
        },
    }
    record_result("fig9_loh3_accuracy", result)

    assert misfit < 0.05, "LTS and GTS seismograms must agree (Fig. 9)"
    assert result["update_ratio_gts_over_lts"] > 1.2
    assert 0.80 <= result["fraction_of_theoretical"] <= 1.20
    assert 1.2 < anelastic_cost < 3.5

"""Fig. 9 (and the Sec. VII-B text numbers): LOH.3 accuracy and LTS efficiency.

Regenerated content:

* GTS and LTS seismograms at the "receiver 9" analogue and their misfit E
  (the paper finds nearly identical solutions, misfits ~1e-3 .. 1e-2),
* the LTS speedup over GTS (paper: 6.0x measured vs 6.3x theoretical, i.e.
  ~95 % of the algorithmic efficiency is realised), and
* the "cost of anelasticity" (paper: ~1.8x for three relaxation mechanisms).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.gts_solver import GlobalTimeSteppingSolver
from repro.core.lts_solver import ClusteredLtsSolver
from repro.source.misfit import seismogram_misfit
from repro.source.receivers import ReceiverSet, resample_seismogram
from repro.workloads.loh3 import loh3_setup

from conftest import record_result


def test_fig9_lts_accuracy_and_anelastic_cost(benchmark, loh3_small_elastic):
    # a faster source so that the direct wave reaches the station analogue
    # within an affordable simulated time window
    setup = loh3_setup(
        extent_m=8000.0, characteristic_length=2000.0, order=4, n_mechanisms=3,
        jitter=0.2, source_frequency=4.0,
    )
    clustering = setup.clustering(n_clusters=3, lam=None)
    # the epicentre station sits ~2 km above the source: direct P arrives ~0.65 s
    t_end = max(0.9, 3.0 * clustering.cluster_time_steps[-1])

    receivers_gts = ReceiverSet(setup.disc, setup.receiver_locations)
    gts = GlobalTimeSteppingSolver(
        setup.disc,
        dt=clustering.cluster_time_steps[0],
        sources=[setup.source],
        receivers=receivers_gts,
    )
    start = time.perf_counter()
    gts.run(t_end)
    time_gts = time.perf_counter() - start

    receivers_lts = ReceiverSet(setup.disc, setup.receiver_locations)
    lts = ClusteredLtsSolver(
        setup.disc, clustering, sources=[setup.source], receivers=receivers_lts
    )

    def run_lts():
        lts.run(t_end)

    benchmark.pedantic(run_lts, rounds=1, iterations=1)

    # misfit E of the LTS vs the GTS solution at the receiver analogue
    t_g, v_g = receivers_gts["epicentre"].seismogram()
    t_l, v_l = receivers_lts["epicentre"].seismogram()
    common = np.linspace(0.0, min(t_g[-1], t_l[-1]), 200)
    ref = resample_seismogram(t_g, v_g, common)
    sol = resample_seismogram(t_l, v_l, common)
    misfit = seismogram_misfit(sol, ref) if np.sum(ref**2) > 0 else 0.0

    assert np.max(np.abs(ref)) > 0.0, "the source signal must reach the station"

    # cost of anelasticity: per-element-update wall time, viscoelastic vs elastic
    elastic = loh3_small_elastic
    gts_e = GlobalTimeSteppingSolver(elastic.disc)
    start = time.perf_counter()
    gts_e.run(10 * float(elastic.disc.time_steps.min()))
    time_elastic = time.perf_counter() - start
    per_update_elastic = time_elastic / gts_e.n_element_updates

    gts_v = GlobalTimeSteppingSolver(setup.disc)
    start = time.perf_counter()
    gts_v.run(10 * float(setup.disc.time_steps.min()))
    time_visco = time.perf_counter() - start
    per_update_visco = time_visco / gts_v.n_element_updates
    anelastic_cost = per_update_visco / per_update_elastic

    result = {
        "n_elements": setup.mesh.n_elements,
        "misfit_E_lts_vs_gts": misfit,
        "update_ratio_gts_over_lts": gts.n_element_updates / lts.n_element_updates,
        "theoretical_speedup": clustering.speedup(),
        # the GTS reference here advances at lambda * dt_min (the same base step
        # as cluster 0), so the expected update ratio is speedup / lambda
        "fraction_of_theoretical": (gts.n_element_updates / lts.n_element_updates)
        / (clustering.speedup() / clustering.lam),
        "anelastic_cost_factor": anelastic_cost,
        "paper": {
            "lts_speedup": 6.0,
            "theoretical": 6.3,
            "fraction": 0.95,
            "anelastic_cost": 1.8,
            "note": "absolute speedups depend on the mesh's dt spread; the scaled mesh has a smaller spread",
        },
    }
    record_result("fig9_loh3_accuracy", result)

    assert misfit < 0.05, "LTS and GTS seismograms must agree (Fig. 9)"
    assert result["update_ratio_gts_over_lts"] > 1.2
    assert 0.80 <= result["fraction_of_theoretical"] <= 1.20
    assert 1.2 < anelastic_cost < 3.5

"""Fig. 10: strong scaling of the La Habra setup on Frontera (modelled).

The paper strong-scales a single forward simulation from 24 to 1,536 nodes
and sixteen fused simulations from 256 to 1,536 nodes, sustaining > 80 %
parallel efficiency everywhere (> 95 % from 256 to 1,536 nodes), and reports
a 10.37x combined LTS + fusion speedup on 1,024 nodes.  Frontera is not
available, so the scaling is *modelled* from the two quantities that
determine it -- the weighted load balance of the partitioning and the
communication volume of the face-local exchange -- using the machine model
of Sec. VII-A (4.84 FP32-TFLOPS nodes, HDR100 downlinks).
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import derive_clustering
from repro.kernels.flops import count_flops_per_element_update
from repro.mesh.generation import box_mesh
from repro.parallel.machine_model import strong_scaling_study
from repro.parallel.partition import element_weights
from repro.workloads.la_habra import PAPER_LAMBDA, la_habra_time_step_distribution

from conftest import record_result

NODE_COUNTS = [3, 6, 12, 24, 48, 96, 192]


def test_fig10_modelled_strong_scaling(benchmark, loh3_small):
    # dual graph + La-Habra-like time step density at a tractable size
    n_cells = 16
    coords = np.linspace(0.0, 1.0, n_cells + 1)
    mesh = box_mesh(coords, coords, coords, free_surface_top=False)
    dts = la_habra_time_step_distribution(n_elements=mesh.n_elements, seed=5)
    clustering = derive_clustering(dts, 5, PAPER_LAMBDA, mesh.neighbors)
    weights = element_weights(clustering.cluster_ids, clustering.n_clusters)
    flops = count_flops_per_element_update(loh3_small.disc, sparse=False).total

    def study():
        return strong_scaling_study(
            weights,
            mesh.neighbors,
            clustering.cluster_ids,
            clustering.n_clusters,
            node_counts=NODE_COUNTS,
            flops_per_element_update=float(flops),
            order=5,
        )

    points = benchmark.pedantic(study, rounds=1, iterations=1)

    efficiencies = {p.n_nodes: p.parallel_efficiency for p in points}
    result = {
        "n_elements": mesh.n_elements,
        "node_counts": NODE_COUNTS,
        "parallel_efficiency": [p.parallel_efficiency for p in points],
        "speedup_vs_smallest": [p.speedup_vs_smallest for p in points],
        "exposed_communication_s": [p.exposed_communication_time for p in points],
        "combined_lts_fused_speedup_estimate": clustering.speedup() * 2.0,
        "paper": {
            "efficiency_range": ">80% (24..1536 nodes), >95% (256..1536)",
            "combined_speedup_1024_nodes": 10.37,
        },
    }
    record_result("fig10_strong_scaling", result)

    # shape of Fig. 10: high parallel efficiency over a 64x node range
    assert all(eff > 0.7 for eff in efficiencies.values())
    assert efficiencies[NODE_COUNTS[-1]] > 0.7
    # and the total modelled time keeps decreasing (strong scaling)
    total_times = [p.total_time for p in points]
    assert total_times[-1] < total_times[0]

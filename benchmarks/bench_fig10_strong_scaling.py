"""Fig. 10: strong scaling of the La Habra setup on Frontera (modelled).

The paper strong-scales a single forward simulation from 24 to 1,536 nodes
and sixteen fused simulations from 256 to 1,536 nodes, sustaining > 80 %
parallel efficiency everywhere (> 95 % from 256 to 1,536 nodes), and reports
a 10.37x combined LTS + fusion speedup on 1,024 nodes.  Frontera is not
available, so the scaling is *modelled* from the two quantities that
determine it -- the weighted load balance of the partitioning and the
communication volume of the face-local exchange -- using the machine model
of Sec. VII-A (4.84 FP32-TFLOPS nodes, HDR100 downlinks).
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import derive_clustering
from repro.kernels.flops import count_flops_per_element_update
from repro.mesh.generation import box_mesh
from repro.parallel.machine_model import strong_scaling_study
from repro.parallel.partition import element_weights
from repro.scenarios import get_scenario, make_runner
from repro.workloads.la_habra import PAPER_LAMBDA, la_habra_time_step_distribution

from conftest import record_bench, record_result

NODE_COUNTS = [3, 6, 12, 24, 48, 96, 192]


def test_fig10_modelled_strong_scaling(benchmark, loh3_small):
    # dual graph + La-Habra-like time step density at a tractable size
    n_cells = 16
    coords = np.linspace(0.0, 1.0, n_cells + 1)
    mesh = box_mesh(coords, coords, coords, free_surface_top=False)
    dts = la_habra_time_step_distribution(n_elements=mesh.n_elements, seed=5)
    clustering = derive_clustering(dts, 5, PAPER_LAMBDA, mesh.neighbors)
    weights = element_weights(clustering.cluster_ids, clustering.n_clusters)
    flops = count_flops_per_element_update(loh3_small.disc, sparse=False).total

    def study():
        return strong_scaling_study(
            weights,
            mesh.neighbors,
            clustering.cluster_ids,
            clustering.n_clusters,
            node_counts=NODE_COUNTS,
            flops_per_element_update=float(flops),
            order=5,
        )

    points = benchmark.pedantic(study, rounds=1, iterations=1)

    efficiencies = {p.n_nodes: p.parallel_efficiency for p in points}
    result = {
        "n_elements": mesh.n_elements,
        "node_counts": NODE_COUNTS,
        "parallel_efficiency": [p.parallel_efficiency for p in points],
        "speedup_vs_smallest": [p.speedup_vs_smallest for p in points],
        "exposed_communication_s": [p.exposed_communication_time for p in points],
        "combined_lts_fused_speedup_estimate": clustering.speedup() * 2.0,
        "paper": {
            "efficiency_range": ">80% (24..1536 nodes), >95% (256..1536)",
            "combined_speedup_1024_nodes": 10.37,
        },
    }
    record_result("fig10_strong_scaling", result)

    # shape of Fig. 10: high parallel efficiency over a 64x node range
    assert all(eff > 0.7 for eff in efficiencies.values())
    assert efficiencies[NODE_COUNTS[-1]] > 0.7
    # and the total modelled time keeps decreasing (strong scaling)
    total_times = [p.total_time for p in points]
    assert total_times[-1] < total_times[0]


def test_model_traffic_validated_by_measured_run():
    """Anchor the scaling model's communication term in measurement: a
    4-rank distributed run's per-pair traffic must equal the face-local
    exchange model the study consumes."""
    spec = get_scenario(
        "loh3",
        extent_m=6000.0,
        characteristic_length=1500.0,
        order=3,
        n_mechanisms=2,
        lam=1.0,
        n_clusters=3,
        n_cycles=1,
    ).with_overrides(n_ranks=4)
    runner = make_runner(spec)
    summary = runner.run()
    comm = summary["comm"]

    record_bench(
        "fig10_measured_4rank",
        wall_s=summary["wall_s"],
        element_updates_per_s=summary["element_updates_per_s"],
        comm_bytes=comm["n_bytes"],
        n_ranks=4,
        per_pair=comm["per_pair"],
    )

    assert comm["measured_bytes_per_cycle"] == comm["model"]["total_bytes"]
    for pair, entry in comm["per_pair"].items():
        assert entry["bytes"] / summary["cycles"] == comm["model"]["per_pair"][pair]

"""Setup shim: enables legacy editable installs on environments without the
``wheel`` package (offline clusters); configuration lives in pyproject.toml."""
from setuptools import setup

setup()
